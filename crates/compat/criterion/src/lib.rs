//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the minimal harness surface its bench targets use: [`Criterion`] with the
//! builder knobs, [`Criterion::benchmark_group`] / `bench_function`,
//! [`Bencher::iter`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark runs `sample_size` timed
//! iterations after one warm-up and prints the mean wall-clock time per
//! iteration — enough to eyeball regressions; no statistical analysis.

use std::time::{Duration, Instant};

/// Opaque measurement harness configuration.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// Units for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; this harness times a fixed iteration
    /// count rather than a wall-clock budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for compatibility (see [`Criterion::measurement_time`]).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for compatibility; command-line filtering is not supported.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Accepted for compatibility; reports are printed as benches run.
    pub fn final_summary(self) {}

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbench group: {name}");
        BenchmarkGroup {
            c: self,
            throughput: None,
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one(&name.into(), sample_size, None, f);
        self
    }
}

/// A group of related benchmarks sharing throughput units.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the timed iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; this harness times a fixed iteration
    /// count rather than a wall-clock budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.c.measurement_time = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&name.into(), self.c.sample_size, self.throughput, f);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the kernel.
pub struct Bencher {
    sample_size: usize,
    throughput: Option<Throughput>,
    name: String,
    reported: bool,
}

impl Bencher {
    /// Time `f`, running it once for warm-up then `sample_size` times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            std::hint::black_box(f());
        }
        let total = start.elapsed();
        let per_iter = total / self.sample_size as u32;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter.as_nanos() > 0 => {
                format!(
                    "  ({:.1} Melem/s)",
                    n as f64 / per_iter.as_nanos() as f64 * 1e3
                )
            }
            Some(Throughput::Bytes(n)) if per_iter.as_nanos() > 0 => {
                format!(
                    "  ({:.1} MB/s)",
                    n as f64 / per_iter.as_nanos() as f64 * 1e3
                )
            }
            _ => String::new(),
        };
        println!("  {:<40} {:>12.3?}/iter{}", self.name, per_iter, rate);
        self.reported = true;
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: F,
) {
    let mut b = Bencher {
        sample_size,
        throughput,
        name: name.to_string(),
        reported: false,
    };
    f(&mut b);
    if !b.reported {
        println!("  {:<40} (no iter() call)", name);
    }
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a bench entry point from a config expression and target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // one warm-up + three samples
        assert_eq!(runs, 4);
    }
}
