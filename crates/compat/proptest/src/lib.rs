//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the subset of the proptest API its test suites use: the [`Strategy`]
//! trait with `prop_map`, [`Just`], integer/float range strategies, tuple
//! strategies, [`collection::vec`], [`prop_oneof!`], [`any`], and the
//! `proptest!` / `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case index; cases are
//!   derived deterministically from the test name and index, so any failure
//!   reproduces exactly on rerun.
//! * **`prop_assume!` skips** the case instead of drawing a replacement.
//! * Value streams differ from upstream proptest's.

use std::fmt;

// ---- deterministic case RNG -------------------------------------------------

/// Deterministic per-case random source (xoshiro256++ seeded by splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for case `case` of the test named `name`: a pure function of
    /// both, so failures are reproducible run-to-run.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut sm = h ^ (u64::from(case) << 32) ^ u64::from(case);
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, span)`.
    ///
    /// # Panics
    /// Panics if `span` is zero.
    #[inline]
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty sampling range");
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---- failure plumbing -------------------------------------------------------

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with the given explanation.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Body result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Outcome distinguishing a skipped (`prop_assume!`) case from a failure.
#[derive(Debug, Clone)]
pub enum CaseOutcome {
    /// The case ran to completion.
    Ran,
    /// The case was rejected by an assumption and should not count.
    Rejected,
}

pub mod test_runner {
    //! Runner configuration (the subset the `proptest!` macro consumes).

    /// How many cases to generate, and (ignored) compatibility knobs.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }
}

// ---- strategies -------------------------------------------------------------

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;

    /// Generates values of `Self::Value` from a [`TestRng`].
    ///
    /// Object safe: heterogeneous strategies of the same value type can be
    /// boxed, which is how [`crate::prop_oneof!`] unions them.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<W, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> W,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, W, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> W,
    {
        type Value = W;
        fn generate(&self, rng: &mut TestRng) -> W {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        alts: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build a union over `alts`.
        ///
        /// # Panics
        /// Panics if `alts` is empty.
        pub fn new(alts: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!alts.is_empty(), "prop_oneof! needs at least one arm");
            Union { alts }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.alts.len() as u64) as usize;
            self.alts[i].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty range strategy");
                    let span = (e as u64).wrapping_sub(s as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    s + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from a half-open range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: `len` elements of `element`, `len` uniform in `range`.
    pub fn vec<S: Strategy>(element: S, range: Range<usize>) -> VecStrategy<S> {
        assert!(range.start < range.end, "empty length range");
        VecStrategy {
            element,
            len: range,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy generating either boolean with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    /// Either boolean, uniformly.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use super::strategy::Strategy;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// That strategy's type.
        type Strategy: Strategy<Value = Self>;
        /// The whole-domain strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    impl Arbitrary for bool {
        type Strategy = crate::bool::BoolAny;
        fn arbitrary() -> Self::Strategy {
            crate::bool::ANY
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = core::ops::RangeInclusive<$t>;
                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize);
}

pub use arbitrary::any;
pub use strategy::{Just, Map, Strategy, Union};
pub use test_runner::ProptestConfig;

pub mod prelude {
    //! Everything a property-test file needs, mirroring the real prelude.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        TestCaseError,
    };
}

// ---- macros -----------------------------------------------------------------

/// Assert inside a property body; failures abort the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Skip the current case when a precondition does not hold.
///
/// Unlike real proptest this does not redraw a replacement case; rejected
/// cases simply do not run (the deterministic stream makes reruns cheap).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let alts: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strat)),+];
        $crate::Union::new(alts)
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...)` runs its body
/// over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __result: $crate::TestCaseResult =
                    (move || { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = __result {
                    panic!(
                        "property `{}` failed at case {} of {}:\n{}",
                        stringify!($name), __case, config.cases, e.0
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in 0u8..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y <= 3);
        }

        #[test]
        fn maps_and_unions_compose(
            v in prop::collection::vec(prop_oneof![Just(0u32), even()], 1..20),
            b in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            // Exercise prop_assume: skip the rare single-element draws.
            prop_assume!(v.len() > 1 || b);
            for x in v {
                prop_assert_eq!(x % 2, 0);
            }
        }

        #[test]
        fn tuples_generate_componentwise((a, b, c) in (0u16..4, 1u64..9, any::<bool>())) {
            prop_assert!(a < 4 && (1..9).contains(&b));
            let _ = c;
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
