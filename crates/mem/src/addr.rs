//! Physical addresses and cache-block geometry.
//!
//! The simulated machine uses 64-byte cache blocks (Table 2) and 4 KiB
//! pages. Blocks are statically interleaved across the chip's LLC banks by
//! block address; because 64 banks x 64-byte blocks span exactly one page,
//! the home-bank bits fall inside the page offset — the property §4.3 relies
//! on to steer incoming remote requests to the right RRPP before translation.

use std::fmt;

/// Cache block size in bytes (Table 2: 64-byte blocks).
pub const BLOCK_BYTES: u64 = 64;

/// Page size in bytes.
pub const PAGE_BYTES: u64 = 4096;

/// A byte-granularity physical address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The containing cache block.
    #[inline]
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 / BLOCK_BYTES)
    }

    /// Offset within the containing cache block.
    #[inline]
    pub fn block_offset(self) -> u64 {
        self.0 % BLOCK_BYTES
    }

    /// Offset within the containing page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 % PAGE_BYTES
    }

    /// Address advanced by `bytes`.
    #[inline]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Addr {
        Addr(v)
    }
}

/// A cache-block-aligned address (the block index, i.e. address / 64).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// First byte address of this block.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 * BLOCK_BYTES)
    }

    /// Home LLC bank under static block interleaving across `n_banks` banks.
    ///
    /// # Panics
    /// Panics if `n_banks` is zero.
    #[inline]
    pub fn home_bank(self, n_banks: u32) -> u32 {
        assert!(n_banks > 0, "bank count must be non-zero");
        (self.0 % u64::from(n_banks)) as u32
    }

    /// The `n`-th block after this one.
    #[inline]
    pub fn step(self, n: u64) -> BlockAddr {
        BlockAddr(self.0 + n)
    }
}

impl fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:0x{:x}", self.0)
    }
}

/// Number of blocks covering `bytes` bytes starting block-aligned.
///
/// ```
/// use ni_mem::addr::blocks_for_bytes;
/// assert_eq!(blocks_for_bytes(1), 1);
/// assert_eq!(blocks_for_bytes(64), 1);
/// assert_eq!(blocks_for_bytes(65), 2);
/// assert_eq!(blocks_for_bytes(8192), 128);
/// ```
pub fn blocks_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(BLOCK_BYTES).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_decomposition_roundtrips() {
        let a = Addr(0x1234);
        assert_eq!(a.block().base().0, 0x1200);
        assert_eq!(a.block_offset(), 0x34);
        assert_eq!(a.offset(0x10).0, 0x1244);
        assert_eq!(Addr::from(64).block(), BlockAddr(1));
    }

    #[test]
    fn home_bank_bits_fall_in_page_offset_for_64_banks() {
        // §4.3: with 64 banks and 64B blocks the home-selection bits are
        // address bits [6..12), all inside the 4KiB page offset. Two
        // addresses in the same page position of different pages map to the
        // same bank.
        let a = Addr(3 * PAGE_BYTES + 640);
        let b = Addr(9 * PAGE_BYTES + 640);
        assert_eq!(a.block().home_bank(64), b.block().home_bank(64));
        // And consecutive blocks round-robin over banks.
        let base = Addr(0).block();
        for i in 0..128 {
            assert_eq!(base.step(i).home_bank(64), (i % 64) as u32);
        }
    }

    #[test]
    fn block_count_math() {
        assert_eq!(blocks_for_bytes(0), 1);
        assert_eq!(blocks_for_bytes(63), 1);
        assert_eq!(blocks_for_bytes(16384), 256);
    }

    #[test]
    fn formatting_is_hex() {
        assert_eq!(format!("{:?}", Addr(255)), "0xff");
        assert_eq!(format!("{}", Addr(255)), "0xff");
        assert_eq!(format!("{:?}", BlockAddr(16)), "blk:0x10");
    }
}
