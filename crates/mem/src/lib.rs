//! # ni-mem — memory system model
//!
//! Physical addresses, cache-block geometry, and the per-edge memory
//! controllers of the simulated SoC. Following the paper's methodology (§5),
//! off-chip memory bandwidth is intentionally *not* a bottleneck: every
//! access completes in a fixed 50ns (100 cycles at 2 GHz), and controllers
//! accept unlimited concurrent requests by default (a concurrency cap is
//! available for ablations).
//!
//! The backing store keeps a 64-bit token per block. Tokens let the
//! coherence test-suite verify data correctness end to end (every write
//! stores a unique token; every read must observe the latest one in
//! coherence order).

#![warn(missing_docs)]

pub mod addr;
pub mod controller;

pub use addr::{blocks_for_bytes, Addr, BlockAddr, BLOCK_BYTES, PAGE_BYTES};
pub use controller::{MemConfig, MemReply, MemRequestKind, MemStats, MemoryController};
