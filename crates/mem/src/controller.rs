//! Memory controller model.
//!
//! One controller sits at each east-edge attach point of the mesh (or on the
//! flattened butterfly in NOC-Out). Requests arrive as coherence-layer
//! messages; the controller services each after a fixed DRAM latency (50ns,
//! Table 2) and returns fill data. The backing store is shared between all
//! controllers of a chip (interleaved physically, uniform in the model) and
//! holds one 64-bit token per block for end-to-end data verification.

// lint: file-allow(hash-order) — the backing store is get/insert only,
// never iterated; it is the largest map in the simulator and O(1) lookup
// matters on the fill path.
use std::collections::HashMap;

use ni_engine::{Counter, Cycle, DelayLine};

use crate::addr::BlockAddr;

/// Kinds of memory requests a controller accepts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemRequestKind {
    /// Fill read: returns the block's current token.
    Read,
    /// Writeback: installs a token, no data reply (an ack is returned so the
    /// LLC can retire the transaction).
    Write,
}

/// Completed memory operation, handed back to the coherence layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemReply {
    /// The block serviced.
    pub block: BlockAddr,
    /// What was requested.
    pub kind: MemRequestKind,
    /// Block token (for reads: the value read; for writes: the value written).
    pub value: u64,
    /// Caller-chosen tag threaded through untouched.
    pub tag: u64,
}

/// Controller timing configuration.
#[derive(Clone, Copy, Debug)]
pub struct MemConfig {
    /// Access latency in cycles (Table 2: 50ns = 100 cycles at 2 GHz).
    pub latency: u64,
    /// Maximum in-flight requests; `None` models the paper's unthrottled
    /// high-bandwidth interface.
    pub max_inflight: Option<usize>,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            latency: 100,
            max_inflight: None,
        }
    }
}

/// Counters exposed by each controller.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemStats {
    /// Read requests accepted.
    pub reads: Counter,
    /// Write requests accepted.
    pub writes: Counter,
    /// Requests rejected by the concurrency cap.
    pub rejects: Counter,
}

/// A single memory controller with its slice of the backing store.
///
/// ```
/// use ni_engine::Cycle;
/// use ni_mem::{BlockAddr, MemConfig, MemRequestKind, MemoryController};
///
/// let mut mc = MemoryController::new(MemConfig { latency: 10, max_inflight: None });
/// mc.push(Cycle(0), BlockAddr(4), MemRequestKind::Write, 42, 1).unwrap();
/// mc.push(Cycle(0), BlockAddr(4), MemRequestKind::Read, 0, 2).unwrap();
/// assert!(mc.pop_ready(Cycle(9)).is_none());
/// let w = mc.pop_ready(Cycle(10)).unwrap();
/// let r = mc.pop_ready(Cycle(10)).unwrap();
/// assert_eq!(w.tag, 1);
/// assert_eq!(r.value, 42); // read observes the earlier write
/// ```
#[derive(Debug)]
pub struct MemoryController {
    cfg: MemConfig,
    store: HashMap<BlockAddr, u64>,
    inflight: DelayLine<MemReply>,
    stats: MemStats,
}

impl MemoryController {
    /// Create a controller with the given timing.
    pub fn new(cfg: MemConfig) -> MemoryController {
        MemoryController {
            cfg,
            store: HashMap::new(),
            inflight: DelayLine::new(),
            stats: MemStats::default(),
        }
    }

    /// Timing configuration.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Submit a request at `now`.
    ///
    /// Reads return the stored token (0 for untouched blocks); writes install
    /// `value`. The request completes `latency` cycles later and is retrieved
    /// with [`MemoryController::pop_ready`].
    ///
    /// # Errors
    /// Returns `Err(())` when the concurrency cap is reached; the caller
    /// should retry next cycle. (The unit error is deliberate: rejection
    /// carries no information beyond "retry".)
    #[allow(clippy::result_unit_err)]
    pub fn push(
        &mut self,
        now: Cycle,
        block: BlockAddr,
        kind: MemRequestKind,
        value: u64,
        tag: u64,
    ) -> Result<(), ()> {
        if let Some(cap) = self.cfg.max_inflight {
            if self.inflight.len() >= cap {
                self.stats.rejects.incr();
                return Err(());
            }
        }
        let value = match kind {
            MemRequestKind::Read => {
                self.stats.reads.incr();
                self.store.get(&block).copied().unwrap_or(0)
            }
            MemRequestKind::Write => {
                self.stats.writes.incr();
                self.store.insert(block, value);
                value
            }
        };
        self.inflight.push_after(
            now,
            self.cfg.latency,
            MemReply {
                block,
                kind,
                value,
                tag,
            },
        );
        Ok(())
    }

    /// Retrieve the next completed request at `now`, if any.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<MemReply> {
        self.inflight.pop_ready(now)
    }

    /// Number of requests still in flight.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Cycle the earliest in-flight request completes, if any. Purely
    /// time-driven: a controller with no in-flight work stays silent until
    /// the next [`MemoryController::push`], so event-driven callers can skip
    /// it entirely between completions.
    pub fn next_ready_at(&self) -> Option<Cycle> {
        self.inflight.next_ready_at()
    }

    /// Directly read a block's token, bypassing timing (testing/debug).
    pub fn peek(&self, block: BlockAddr) -> u64 {
        self.store.get(&block).copied().unwrap_or(0)
    }

    /// Directly install a block token, bypassing timing (initialization).
    pub fn poke(&mut self, block: BlockAddr, value: u64) {
        self.store.insert(block, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_after_write_sees_token() {
        let mut mc = MemoryController::new(MemConfig::default());
        mc.push(Cycle(0), BlockAddr(1), MemRequestKind::Write, 99, 0)
            .unwrap();
        mc.push(Cycle(1), BlockAddr(1), MemRequestKind::Read, 0, 1)
            .unwrap();
        assert_eq!(mc.pop_ready(Cycle(99)), None);
        let w = mc.pop_ready(Cycle(100)).unwrap();
        assert_eq!(w.kind, MemRequestKind::Write);
        let r = mc.pop_ready(Cycle(101)).unwrap();
        assert_eq!(r.value, 99);
        assert_eq!(mc.stats().reads.get(), 1);
        assert_eq!(mc.stats().writes.get(), 1);
    }

    #[test]
    fn untouched_blocks_read_zero() {
        let mut mc = MemoryController::new(MemConfig::default());
        mc.push(Cycle(0), BlockAddr(77), MemRequestKind::Read, 0, 5)
            .unwrap();
        let r = mc.pop_ready(Cycle(100)).unwrap();
        assert_eq!(r.value, 0);
        assert_eq!(r.tag, 5);
    }

    #[test]
    fn concurrency_cap_rejects() {
        let mut mc = MemoryController::new(MemConfig {
            latency: 10,
            max_inflight: Some(1),
        });
        mc.push(Cycle(0), BlockAddr(0), MemRequestKind::Read, 0, 0)
            .unwrap();
        assert!(mc
            .push(Cycle(0), BlockAddr(1), MemRequestKind::Read, 0, 1)
            .is_err());
        assert_eq!(mc.stats().rejects.get(), 1);
        assert_eq!(mc.inflight(), 1);
        mc.pop_ready(Cycle(10)).unwrap();
        assert!(mc
            .push(Cycle(10), BlockAddr(1), MemRequestKind::Read, 0, 1)
            .is_ok());
    }

    #[test]
    fn poke_and_peek_bypass_timing() {
        let mut mc = MemoryController::new(MemConfig::default());
        mc.poke(BlockAddr(3), 1234);
        assert_eq!(mc.peek(BlockAddr(3)), 1234);
        assert_eq!(mc.peek(BlockAddr(4)), 0);
    }
}
