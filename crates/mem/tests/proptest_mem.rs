//! Property tests for the physical address space and the memory
//! controller's timing/ordering contract.

use ni_engine::Cycle;
use ni_mem::{blocks_for_bytes, Addr, BlockAddr, MemConfig, MemRequestKind, MemoryController};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn block_base_and_offset_reconstruct_address(a in 0u64..u64::MAX / 2) {
        let addr = Addr(a);
        let b = addr.block();
        prop_assert_eq!(b.base().0 + addr.block_offset(), a);
        prop_assert!(addr.block_offset() < 64);
        prop_assert_eq!(b.base().block(), b, "block base is block-aligned");
    }

    #[test]
    fn same_block_iff_same_upper_bits(a in 0u64..1 << 40, delta in 0u64..256) {
        let x = Addr(a);
        let y = x.offset(delta);
        let same = (a / 64) == ((a + delta) / 64);
        prop_assert_eq!(x.block() == y.block(), same);
    }

    #[test]
    fn block_step_is_additive(b in 0u64..1 << 40, n in 0u64..1000, m in 0u64..1000) {
        let blk = BlockAddr(b);
        prop_assert_eq!(blk.step(n).step(m), blk.step(n + m));
        prop_assert_eq!(blk.step(0), blk);
    }

    #[test]
    fn home_bank_is_stable_and_in_range(b in 0u64..1 << 40, n_banks in 1u32..128) {
        let blk = BlockAddr(b);
        let h = blk.home_bank(n_banks);
        prop_assert!(h < n_banks);
        prop_assert_eq!(h, blk.home_bank(n_banks), "deterministic");
        // Consecutive blocks interleave round-robin across banks.
        prop_assert_eq!(blk.step(1).home_bank(n_banks), (h + 1) % n_banks);
    }

    #[test]
    fn blocks_for_bytes_covers_exactly(bytes in 0u64..1_000_000) {
        let n = blocks_for_bytes(bytes);
        prop_assert!(n * 64 >= bytes);
        if bytes > 0 {
            prop_assert!((n - 1) * 64 < bytes);
        } else {
            prop_assert_eq!(n, 1, "zero-length transfers still move one block");
        }
    }

    #[test]
    fn memory_controller_replies_after_exactly_latency(
        latency in 1u64..500,
        reqs in prop::collection::vec((0u64..1 << 30, any::<bool>(), 0u64..u64::MAX), 1..40),
    ) {
        let mut mc = MemoryController::new(MemConfig { latency, max_inflight: None });
        for (i, &(block, is_read, value)) in reqs.iter().enumerate() {
            let kind = if is_read { MemRequestKind::Read } else { MemRequestKind::Write };
            mc.push(Cycle(i as u64), BlockAddr(block), kind, value, i as u64)
                .expect("uncapped");
        }
        // Nothing is ready before its latency elapses.
        prop_assert!(mc.pop_ready(Cycle(latency - 1)).is_none());
        let mut got = Vec::new();
        let horizon = reqs.len() as u64 + latency + 2;
        for t in 0..horizon {
            while let Some(r) = mc.pop_ready(Cycle(t)) {
                got.push((t, r));
            }
        }
        prop_assert_eq!(got.len(), reqs.len(), "every request answered");
        for (t, r) in &got {
            let i = r.tag as usize;
            let (block, is_read, value) = reqs[i];
            prop_assert_eq!(r.block, BlockAddr(block));
            prop_assert_eq!(*t, i as u64 + latency, "fixed-latency service");
            match r.kind {
                MemRequestKind::Read => prop_assert!(is_read),
                MemRequestKind::Write => {
                    prop_assert!(!is_read);
                    // Write acks do not invent data.
                    let _ = value;
                }
            }
        }
    }

    #[test]
    fn memory_controller_bounded_inflight_backpressures(cap in 1usize..8) {
        let mut mc = MemoryController::new(MemConfig {
            latency: 100,
            max_inflight: Some(cap),
        });
        for i in 0..cap {
            prop_assert!(mc
                .push(Cycle(0), BlockAddr(i as u64), MemRequestKind::Read, 0, i as u64)
                .is_ok());
        }
        prop_assert!(
            mc.push(Cycle(0), BlockAddr(99), MemRequestKind::Read, 0, 99).is_err(),
            "cap {cap} must reject request {cap}"
        );
        // Draining frees capacity again.
        let mut drained = 0;
        for t in 0..200u64 {
            while mc.pop_ready(Cycle(t)).is_some() {
                drained += 1;
            }
        }
        prop_assert_eq!(drained, cap);
        prop_assert!(mc
            .push(Cycle(200), BlockAddr(1), MemRequestKind::Read, 0, 1)
            .is_ok());
    }
}
