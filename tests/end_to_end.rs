//! End-to-end integration tests: every NI design on every topology, driven
//! through the public `rackni` API, with cross-crate invariants checked on
//! the assembled node.

use rackni::ni_rmc::NiPlacement;
use rackni::ni_soc::{run_sync_latency, Chip, ChipConfig, Topology, Workload};

fn cfg(p: NiPlacement, t: Topology) -> ChipConfig {
    ChipConfig {
        placement: p,
        topology: t,
        ..ChipConfig::default()
    }
}

#[test]
fn every_design_completes_sync_reads_on_every_topology() {
    for topo in [Topology::Mesh, Topology::NocOut] {
        for p in [
            NiPlacement::Edge,
            NiPlacement::PerTile,
            NiPlacement::Split,
            NiPlacement::Numa,
        ] {
            let r = run_sync_latency(cfg(p, topo), 64, 4);
            assert_eq!(r.ops, 4, "{p:?} on {topo:?}");
            assert!(
                r.mean_cycles > 200.0 && r.mean_cycles < 2000.0,
                "{p:?} on {topo:?}: {} cycles",
                r.mean_cycles
            );
        }
    }
}

#[test]
fn design_space_latency_ordering_matches_paper() {
    // Paper §6.1: NUMA < NIper-tile ~ NIsplit << NIedge at one hop.
    let n = run_sync_latency(cfg(NiPlacement::Numa, Topology::Mesh), 64, 6).mean_cycles;
    let pt = run_sync_latency(cfg(NiPlacement::PerTile, Topology::Mesh), 64, 6).mean_cycles;
    let sp = run_sync_latency(cfg(NiPlacement::Split, Topology::Mesh), 64, 6).mean_cycles;
    let ed = run_sync_latency(cfg(NiPlacement::Edge, Topology::Mesh), 64, 6).mean_cycles;
    assert!(n < pt && n < sp && n < ed, "NUMA floor: {n} {pt} {sp} {ed}");
    assert!(
        ed > sp && ed > pt,
        "edge pays for QP round trips: {ed} vs {sp}/{pt}"
    );
    // Split within ~10% of per-tile (paper: both within 3% of each other).
    assert!((sp / pt - 1.0).abs() < 0.10, "split {sp} vs per-tile {pt}");
    // Edge overhead over NUMA is large (paper: ~80%).
    assert!(ed / n > 1.4, "edge {ed} vs numa {n}");
}

#[test]
fn multiblock_unroll_scales_latency_with_size() {
    let sizes = [64u64, 1024, 4096];
    let mut prev = 0.0;
    for s in sizes {
        let r = run_sync_latency(cfg(NiPlacement::Split, Topology::Mesh), s, 3);
        assert!(
            r.mean_cycles > prev,
            "latency must grow with size: {s}B gave {}",
            r.mean_cycles
        );
        prev = r.mean_cycles;
    }
    // 4096B = 64 blocks unrolled at 1/cycle; the extra latency over 64B
    // must be at least the unroll serialization plus streaming returns.
    let small = run_sync_latency(cfg(NiPlacement::Split, Topology::Mesh), 64, 3).mean_cycles;
    assert!(
        prev - small > 60.0,
        "4KB must cost >= 63 unroll cycles more"
    );
}

#[test]
fn conservation_requests_equal_responses_after_drain() {
    let mut chip = Chip::new(
        cfg(NiPlacement::Split, Topology::Mesh),
        Workload::AsyncRead {
            size: 512,
            poll_every: 4,
        },
    );
    chip.run(30_000);
    let sent = chip.fabric_stats().sent.get();
    let responded = chip.fabric_stats().responded.get();
    assert!(sent > 0, "workload made no progress");
    // Responses lag sends by at most the in-flight window, which is
    // structurally bounded by WQ capacity: 64 QPs x 128 entries x 8 blocks.
    assert!(responded <= sent);
    assert!(
        sent - responded <= 64 * 128 * 8,
        "in-flight beyond structural capacity: {sent} sent, {responded} responded"
    );
    // And the steady-state majority of requests must have completed.
    assert!(
        responded * 2 > sent,
        "response starvation: {sent} sent, {responded} responded"
    );
}

#[test]
fn rate_matching_mirrors_outgoing_traffic() {
    let mut chip = Chip::new(
        cfg(NiPlacement::Split, Topology::Mesh),
        Workload::AsyncRead {
            size: 256,
            poll_every: 4,
        },
    );
    chip.run(30_000);
    let sent = chip.fabric_stats().sent.get();
    let incoming = chip.fabric_stats().incoming_generated.get();
    assert_eq!(sent, incoming, "§5: incoming rate matches outgoing rate");
    assert!(
        chip.rrpp_mean_latency() > 0.0,
        "RRPPs serviced incoming requests"
    );
}

#[test]
fn latency_runs_measure_zero_load_rrpp_service_time() {
    // §5: the rack emulator mirrors each outgoing request, so the local
    // RRPPs service an unloaded request stream; their measured latency is
    // the paper's 208-cycle "RRPP servicing" component.
    let r = run_sync_latency(cfg(NiPlacement::Split, Topology::Mesh), 64, 5);
    assert!(
        r.rrpp_cycles > 0.0,
        "mirrored requests must reach the RRPPs"
    );
    assert!(
        (r.rrpp_cycles - 208.0).abs() < 60.0,
        "zero-load RRPP service {} should be near the paper's 208 cycles",
        r.rrpp_cycles
    );
}

#[test]
fn app_bandwidth_counts_both_directions() {
    let mut chip = Chip::new(
        cfg(NiPlacement::Split, Topology::Mesh),
        Workload::AsyncRead {
            size: 1024,
            poll_every: 4,
        },
    );
    chip.run(40_000);
    let total = chip.app_payload_bytes();
    assert!(total > 0);
    // Mirrored traffic means RRPP-sent bytes roughly track RCP-delivered
    // bytes; both must be non-trivial.
    let ops = chip.completed_ops();
    assert!(ops > 0);
    assert!(total >= ops * 1024, "delivered bytes cover completed reads");
}

#[test]
fn idle_workload_stays_quiescent() {
    let mut chip = Chip::new(cfg(NiPlacement::Split, Topology::Mesh), Workload::Idle);
    chip.run(5_000);
    assert_eq!(chip.completed_ops(), 0);
    assert_eq!(chip.app_payload_bytes(), 0);
    assert_eq!(chip.fabric_stats().sent.get(), 0);
}

#[test]
fn single_active_core_only_that_core_progresses() {
    let mut c = cfg(NiPlacement::Split, Topology::Mesh);
    c.active_cores = 1;
    let mut chip = Chip::new(c, Workload::SyncRead { size: 64 });
    chip.run(20_000);
    assert!(chip.cores[0].stats.completed > 0);
    for i in 1..chip.cores.len() {
        assert_eq!(chip.cores[i].stats.completed, 0, "core {i} should idle");
    }
}

#[test]
fn more_hops_cost_more_latency() {
    let mut near = cfg(NiPlacement::Split, Topology::Mesh);
    near.rack.hops = 1;
    let mut far = cfg(NiPlacement::Split, Topology::Mesh);
    far.rack.hops = 6;
    let rn = run_sync_latency(near, 64, 4).mean_cycles;
    let rf = run_sync_latency(far, 64, 4).mean_cycles;
    // 5 extra hops x 70 cycles x 2 directions = 700 cycles.
    let delta = rf - rn;
    assert!(
        (delta - 700.0).abs() < 50.0,
        "hop scaling: near {rn}, far {rf}, delta {delta}"
    );
}

#[test]
fn latency_percentiles_are_ordered() {
    let r = run_sync_latency(cfg(NiPlacement::Split, Topology::Mesh), 64, 12);
    assert!(r.p50_cycles > 0);
    assert!(r.p50_cycles <= r.p95_cycles);
    assert!(r.p95_cycles <= r.p99_cycles);
    // An unloaded synchronous stream has a tight distribution: the tail
    // stays within 2x of the median.
    assert!(
        r.p99_cycles < r.p50_cycles * 2,
        "p50 {} p99 {}",
        r.p50_cycles,
        r.p99_cycles
    );
}
