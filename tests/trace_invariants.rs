//! Latency-tomography invariants: the trace stages of every completed
//! operation must appear in pipeline order, and the stage deltas must add
//! up to the end-to-end latency that the core measures.

use rackni::ni_rmc::{NiPlacement, Stage};
use rackni::ni_soc::{Chip, ChipConfig, Workload};

fn run(p: NiPlacement, size: u64, ops: u64) -> Chip {
    let cfg = ChipConfig {
        placement: p,
        active_cores: 1,
        ..ChipConfig::default()
    };
    let mut chip = Chip::new(cfg, Workload::SyncRead { size });
    let mut guard = 0u64;
    while chip.completed_ops() < ops {
        chip.tick();
        guard += 1;
        assert!(guard < 5_000_000, "run stalled");
    }
    // Drain the final op's trace events (recorded by components on their
    // next tick).
    chip.run(16);
    chip
}

#[test]
fn stages_appear_in_pipeline_order() {
    for p in NiPlacement::QP_DESIGNS {
        let chip = run(p, 64, 3);
        for wq_id in 1..=3u64 {
            let mut prev = None;
            for stage in Stage::ALL {
                let at = chip.traces.at(0, wq_id, stage);
                let Some(at) = at else { continue };
                if let Some((ps, pa)) = prev {
                    assert!(
                        at >= pa,
                        "{p:?} op {wq_id}: {stage:?}@{at:?} before {ps:?}@{pa:?}"
                    );
                }
                prev = Some((stage, at));
            }
        }
    }
}

#[test]
fn every_completed_op_has_terminal_stages() {
    let chip = run(NiPlacement::Split, 64, 4);
    for wq_id in 1..=4u64 {
        for stage in [
            Stage::WqWriteStart,
            Stage::WqWriteDone,
            Stage::NetOut,
            Stage::NetIn,
            Stage::CqWritten,
            Stage::CqReadDone,
        ] {
            assert!(
                chip.traces.at(0, wq_id, stage).is_some(),
                "op {wq_id} missing {stage:?}"
            );
        }
    }
}

#[test]
fn stage_deltas_are_consistent_with_end_to_end() {
    let chip = run(NiPlacement::Split, 64, 5);
    let e2e = chip.traces.mean_end_to_end().expect("ops completed");
    let sum = [
        (Stage::WqWriteStart, Stage::WqWriteDone),
        (Stage::WqWriteDone, Stage::BeReceived),
        (Stage::BeReceived, Stage::NetOut),
        (Stage::NetOut, Stage::NetIn),
        (Stage::NetIn, Stage::CqWritten),
        (Stage::CqWritten, Stage::CqReadDone),
    ]
    .iter()
    .map(|&(a, b)| chip.traces.mean_between(a, b).unwrap_or(0.0))
    .sum::<f64>();
    assert!(
        (sum - e2e).abs() < 1.0,
        "stage deltas {sum} != end-to-end {e2e}"
    );
}

#[test]
fn network_round_trip_includes_two_hops_and_service() {
    let chip = run(NiPlacement::Split, 64, 4);
    let rt = chip
        .traces
        .mean_between(Stage::NetOut, Stage::NetIn)
        .expect("ops completed");
    // 2 x 70-cycle hops + ~208-cycle remote service, plus RCP backend
    // processing before NetIn is recorded.
    assert!(rt > 300.0, "round trip too fast: {rt}");
    assert!(rt < 450.0, "round trip too slow: {rt}");
}

#[test]
fn larger_transfers_stretch_netout_to_netin() {
    let small = run(NiPlacement::Split, 64, 3);
    let big = run(NiPlacement::Split, 8192, 3);
    let rt_small = small
        .traces
        .mean_between(Stage::NetOut, Stage::NetIn)
        .unwrap();
    let rt_big = big
        .traces
        .mean_between(Stage::NetOut, Stage::NetIn)
        .unwrap();
    // NetIn fires when the *last* block lands; 128 blocks at 1/cycle unroll
    // must stretch the window by at least the serialization time.
    assert!(
        rt_big > rt_small + 100.0,
        "8KB round trip {rt_big} vs 64B {rt_small}"
    );
}
