//! Same-seed bit-identity regression for the determinism cleanup ni_lint
//! forced: build the same seeded rack twice *in the same process* and
//! require identical fingerprints.
//!
//! This catches exactly the hazard class the linter's `hash-order` rule
//! polices: `HashMap`'s per-instance `RandomState` draws fresh OS entropy
//! for every map, so iteration order differs between two maps built in one
//! process. Before the cleanup, the cache complex broke LRU-victim ties and
//! the trace table folded float means in hash order — both converted to
//! `BTreeMap` (along with the RMC pipeline and chip dispatch maps), and
//! these runs pin the conversion down.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use rackni::ni_fabric::{FaultPlan, ReplicaCfg, RoutingKind, Torus3D};
use rackni::ni_soc::{
    ChipConfig, ClosedLoop, GraphShard, KvStore, Op, OpCtx, Rack, RackSimConfig, Scenario,
    TenantMix, TrafficPattern, Workload,
};

/// Everything a reordered victim choice, retry, or delivery could perturb:
/// aggregate and per-node completion counts, traffic/fault/watchdog
/// counters, and the RRPP latency means (bit-compared — floats diverge if
/// any sample's *order or timing* moves).
#[derive(Debug, PartialEq)]
struct Fingerprint {
    sent: u64,
    responded: u64,
    incoming: u64,
    completed_ops: u64,
    failed_ops: u64,
    payload_bytes: u64,
    hops: u64,
    timeouts: u64,
    retries: u64,
    replays: u64,
    quorum_writes: u64,
    degraded: u64,
    rrpp_means: Vec<f64>,
    per_node_ops: Vec<u64>,
}

fn fingerprint(rack: &Rack) -> Fingerprint {
    let fs = rack.fabric_stats();
    let be = rack.backend_stats();
    Fingerprint {
        sent: fs.sent.get(),
        responded: fs.responded.get(),
        incoming: fs.incoming_generated.get(),
        completed_ops: rack.completed_ops(),
        failed_ops: rack.failed_ops(),
        payload_bytes: rack.app_payload_bytes(),
        hops: rack.hops_traversed(),
        timeouts: be.itt_timeouts.get(),
        retries: be.itt_retries.get(),
        replays: be.replays.get(),
        quorum_writes: be.quorum_writes.get(),
        degraded: rack.degraded_ops(),
        rrpp_means: rack.rrpp_mean_latencies(),
        per_node_ops: rack.chips().iter().map(|c| c.completed_ops()).collect(),
    }
}

/// A healthy seeded rack: 2x2x2 torus, every node issuing async remote
/// reads. Exercises the frontend poll/dispatch maps, the RRPP pending
/// queues, the directory and cache-complex maps on every chip.
fn healthy_run(cycles: u64) -> Rack {
    let mut cfg = RackSimConfig {
        torus: Torus3D::new(2, 2, 2),
        chip: ChipConfig {
            active_cores: 2,
            ..ChipConfig::default()
        },
        traffic: TrafficPattern::Uniform,
        ..RackSimConfig::default()
    };
    cfg.chip.seed = 0xd51e;
    let mut rack = Rack::new(
        cfg,
        Workload::AsyncRead {
            size: 256,
            poll_every: 4,
        },
    );
    rack.run(cycles);
    rack
}

/// A faulty seeded rack: a mid-run link kill under health-blind
/// dimension-order routing, so transfers stall into the ITT watchdog. The
/// watchdog's timeout scan walks the backend's transfer table and its retry
/// purge `retain`s it — the iteration-order-sensitive paths the `BTreeMap`
/// conversion fixed — and the retried traffic reshapes every downstream
/// cache/directory map.
fn faulty_run(cycles: u64) -> Rack {
    let mut cfg = RackSimConfig {
        torus: Torus3D::new(3, 3, 1),
        chip: ChipConfig {
            active_cores: 2,
            ..ChipConfig::default()
        },
        traffic: TrafficPattern::Uniform,
        routing: RoutingKind::DimensionOrder,
        faults: FaultPlan::new().link_down(0, 1, 300),
        ..RackSimConfig::default()
    };
    cfg.chip.seed = 0xfa11;
    cfg.chip.rmc.itt_timeout = 1_500;
    cfg.chip.rmc.itt_retries = 2;
    let mut rack = Rack::new(
        cfg,
        Workload::AsyncRead {
            size: 256,
            poll_every: 4,
        },
    );
    rack.run(cycles);
    rack
}

/// A recovering seeded rack: K=2 replication with WQ replay armed, a node
/// kill mid-run. The recovery machinery adds two new order-sensitive
/// structures — the quorum table (write legs joining out of order) and the
/// replay path (generation bumps, alternate-destination re-injection) —
/// and this run pins both to the same-seed contract. A 95/5 GET/PUT mix
/// exercises read replay and write quorum in the same run.
fn recovery_run(cycles: u64) -> Rack {
    let mut cfg = RackSimConfig {
        torus: Torus3D::new(3, 3, 1),
        chip: ChipConfig {
            active_cores: 2,
            ..ChipConfig::default()
        },
        traffic: TrafficPattern::Uniform,
        routing: RoutingKind::FaultAdaptive,
        faults: FaultPlan::new().node_down(4, 300),
        ..RackSimConfig::default()
    };
    cfg.chip.seed = 0x4ec0;
    cfg.chip.rmc.itt_timeout = 1_500;
    cfg.chip.rmc.itt_retries = 1;
    cfg.chip.rmc.replication = ReplicaCfg {
        k: 2,
        w: 1,
        seed: 0x4ec0,
    };
    cfg.chip.rmc.replay_budget = 1;
    let mut rack = Rack::with_scenario(cfg, &rackni::ni_soc::KvStore::default());
    rack.run(cycles);
    rack
}

/// A multi-tenant serving rack: a closed-loop KV tenant (two-sided RPCs
/// via a per-block service time, seeded think times) interleaved with a
/// bulk graph tenant on disjoint cores. Adds the serving tier's own
/// order-sensitive surfaces — the closed-loop window bookkeeping
/// (`OpCtx::inflight`), the think-time RNG, the RRPP service-time delay
/// queue, and the per-tenant `BTreeMap` aggregation — to the same-seed
/// contract.
fn serving_run(cycles: u64) -> Rack {
    let mut cfg = RackSimConfig {
        torus: Torus3D::new(3, 3, 1),
        chip: ChipConfig {
            active_cores: 2,
            ..ChipConfig::default()
        },
        ..RackSimConfig::default()
    };
    cfg.chip.seed = 0x5e41;
    let mix = TenantMix::new()
        .with_tenant(
            1,
            Box::new(ClosedLoop::new(
                Box::new(KvStore::default().with_service(150)),
                4,
                64,
            )),
            1,
        )
        .with_tenant(2, Box::new(GraphShard::default()), 1);
    let mut rack = Rack::with_scenario(cfg, &mix);
    rack.run(cycles);
    rack
}

/// One tenant's observable row: (tag, issued, completed, bytes, p99).
type TenantRow = (u8, u64, u64, u64, u64);

/// The serving fingerprint: the transport fingerprint plus the per-tenant
/// SLO observables (counts, goodput bytes, tail percentiles) the metrics
/// crate aggregates — a reordering that only moved *which tenant* an op
/// was accounted to would slip past the transport-level fields.
fn serving_fingerprint(rack: &Rack) -> (Fingerprint, Vec<TenantRow>) {
    let tenants = rack
        .tenant_stats()
        .iter()
        .map(|(tag, a)| {
            (
                *tag,
                a.issued,
                a.completed,
                a.bytes,
                a.latency.percentile(0.99),
            )
        })
        .collect();
    (fingerprint(rack), tenants)
}

#[test]
fn same_seed_twice_in_one_process_is_bit_identical() {
    let cycles = 4_000;
    let a = fingerprint(&healthy_run(cycles));
    assert!(a.completed_ops > 0, "run must do real work: {a:?}");
    assert!(a.hops > 0, "run must cross the fabric: {a:?}");
    let b = fingerprint(&healthy_run(cycles));
    assert_eq!(a, b, "same seed, same process, different fingerprint");
}

#[test]
fn same_seed_watchdog_run_is_bit_identical() {
    let cycles = 12_000;
    let a = fingerprint(&faulty_run(cycles));
    assert!(
        a.timeouts > 0,
        "the dead link must trip the ITT watchdog: {a:?}"
    );
    let b = fingerprint(&faulty_run(cycles));
    assert_eq!(a, b, "same seed, same faults, different fingerprint");
}

#[test]
fn same_seed_recovery_run_is_bit_identical() {
    let cycles = 20_000;
    let a = fingerprint(&recovery_run(cycles));
    assert!(
        a.replays > 0,
        "the node kill must force WQ replays through the replica map: {a:?}"
    );
    assert!(
        a.quorum_writes > 0,
        "the PUT slice must fan out through the quorum table: {a:?}"
    );
    assert!(
        a.degraded > 0,
        "replayed reads must complete with the degraded flag: {a:?}"
    );
    let b = fingerprint(&recovery_run(cycles));
    assert_eq!(a, b, "same seed, same recovery, different fingerprint");
}

#[test]
fn same_seed_serving_run_is_bit_identical_per_tenant() {
    let cycles = 10_000;
    let (a, ta) = serving_fingerprint(&serving_run(cycles));
    assert!(a.completed_ops > 0, "run must do real work: {a:?}");
    let kv = ta.iter().find(|t| t.0 == 1).expect("kv tenant reported");
    let bulk = ta.iter().find(|t| t.0 == 2).expect("bulk tenant reported");
    assert!(kv.2 > 0, "kv tenant must complete ops: {ta:?}");
    assert!(bulk.2 > 0, "bulk tenant must complete ops: {ta:?}");
    let (b, tb) = serving_fingerprint(&serving_run(cycles));
    assert_eq!(a, b, "same seed, same mix, different fingerprint");
    assert_eq!(ta, tb, "same seed, different per-tenant accounting");
}

/// Wraps the scenario *inside* a [`ClosedLoop`] and records the largest
/// `ctx.inflight` it was consulted at — the closed loop only reaches its
/// inner generator when it decides to issue a real op, so this observes
/// exactly the pre-issue outstanding count the window must bound.
#[derive(Debug)]
struct Probe {
    inner: Box<dyn Scenario>,
    max_inflight: Arc<AtomicU64>,
}

impl Scenario for Probe {
    fn name(&self) -> &str {
        "probe"
    }
    fn for_core(&self, ctx: &OpCtx) -> Box<dyn Scenario> {
        Box::new(Probe {
            inner: self.inner.for_core(ctx),
            max_inflight: Arc::clone(&self.max_inflight),
        })
    }
    fn next_op(&mut self, ctx: &OpCtx) -> Op {
        self.max_inflight.fetch_max(ctx.inflight, Ordering::Relaxed);
        self.inner.next_op(ctx)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The closed-loop bound, as a property over the window and think
    /// parameters: across a real rack run, the core never asks the inner
    /// generator for an op while `window` requests are already
    /// outstanding.
    #[test]
    fn closed_loop_never_exceeds_its_window(window in 1u64..=6, think in 0u64..=100) {
        let max_inflight = Arc::new(AtomicU64::new(0));
        let probe = Probe {
            inner: Box::new(KvStore::default().with_service(100)),
            max_inflight: Arc::clone(&max_inflight),
        };
        let closed = ClosedLoop::new(Box::new(probe), window, think);
        let mut cfg = RackSimConfig {
            torus: Torus3D::new(2, 1, 1),
            chip: ChipConfig {
                active_cores: 2,
                ..ChipConfig::default()
            },
            ..RackSimConfig::default()
        };
        cfg.chip.seed = 0xc105;
        let mut rack = Rack::with_scenario(cfg, &closed);
        rack.run(4_000);
        prop_assert!(rack.completed_ops() > 0, "run must do real work");
        let seen = max_inflight.load(Ordering::Relaxed);
        prop_assert!(
            seen < window,
            "inner generator consulted at inflight {seen} >= window {window}"
        );
    }
}
