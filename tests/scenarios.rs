//! Scenario-API integration tests: every built-in scenario through the same
//! trait object on both evaluation paths (single chip behind the emulator,
//! 8-node torus rack), seed-determinism of op streams and whole-rack runs,
//! and the hotspot skew the uniform `TrafficPattern` enum could not express.

use rackni::experiments::link_byte_skew;
use rackni::ni_fabric::Torus3D;
use rackni::ni_soc::{
    builtin_scenarios, run_chip_scenario, ChipConfig, Op, OpCtx, Rack, RackSimConfig, Scenario,
    Synthetic, TrafficPattern, Workload, ZipfHotspot,
};

fn rack_cfg(seed: u64, active_cores: usize) -> RackSimConfig {
    RackSimConfig {
        torus: Torus3D::new(2, 2, 2),
        chip: ChipConfig {
            active_cores,
            seed,
            ..ChipConfig::default()
        },
        ..RackSimConfig::default()
    }
}

/// Acceptance: all four built-in scenarios run on the single-chip path
/// (paper's rack emulator) through the `Scenario` trait object.
#[test]
fn every_builtin_scenario_completes_on_the_single_chip_path() {
    for s in builtin_scenarios() {
        let cfg = ChipConfig {
            active_cores: 4,
            ..ChipConfig::default()
        };
        let r = run_chip_scenario(cfg, s.as_ref(), 30_000);
        assert!(
            r.ops > 10,
            "{}: only {} ops on the chip path",
            r.scenario,
            r.ops
        );
        assert!(r.app_gbps > 0.0, "{}: no payload moved", r.scenario);
    }
}

/// Acceptance: all four built-in scenarios run on an 8-node `TorusFabric`
/// rack through the same `Scenario` trait object, with real cross-node
/// traffic on the fabric.
#[test]
fn every_builtin_scenario_completes_on_an_eight_node_rack() {
    for s in builtin_scenarios() {
        let mut rack = Rack::with_scenario(rack_cfg(7, 2), s.as_ref());
        rack.run(20_000);
        assert!(
            rack.completed_ops() > 10,
            "{}: only {} ops rack-wide",
            rack.scenario_name(),
            rack.completed_ops()
        );
        assert!(
            rack.hops_traversed() > 0,
            "{}: no fabric traffic",
            rack.scenario_name()
        );
        let fs = rack.fabric_stats();
        assert!(
            fs.sent.get() > 0 && fs.responded.get() > 0,
            "{}: requests must round-trip",
            rack.scenario_name()
        );
    }
}

/// Determinism at the generator level: the same `OpCtx` must replay an
/// identical op stream for every built-in scenario.
#[test]
fn generators_replay_identical_op_streams_from_one_seed() {
    let stream = |s: &dyn Scenario, seed: u64| -> Vec<Op> {
        let ctx = OpCtx::bind(2, 3, 8, Some(Torus3D::new(2, 2, 2)), seed);
        let mut g = s.for_core(&ctx);
        let mut c = ctx;
        (0..300)
            .map(|i| {
                c.issued = i;
                g.next_op(&c)
            })
            .collect()
    };
    for s in builtin_scenarios() {
        assert_eq!(
            stream(s.as_ref(), 99),
            stream(s.as_ref(), 99),
            "{}: same seed must replay the same ops",
            s.name()
        );
    }
}

/// Determinism at the rack level: the same `RackSimConfig` seed must
/// reproduce identical `FabricStats` (and every other counter) across two
/// runs, for every built-in scenario.
#[test]
fn rack_runs_reproduce_identical_fabric_stats_per_scenario() {
    for s in builtin_scenarios() {
        let run = || {
            let mut rack = Rack::with_scenario(rack_cfg(1234, 2), s.as_ref());
            rack.run(10_000);
            let fs = rack.fabric_stats();
            (
                fs.sent.get(),
                fs.responded.get(),
                fs.incoming_generated.get(),
                rack.hops_traversed(),
                rack.completed_ops(),
                rack.app_payload_bytes(),
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "{}: two same-seed runs diverged", s.name());
        assert!(a.0 > 0, "{}: no requests sent", s.name());
    }
}

/// Different seeds must actually change randomized scenarios' traffic.
#[test]
fn rack_runs_decorrelate_across_seeds() {
    let s = ZipfHotspot::default();
    let run = |seed: u64| {
        let mut rack = Rack::with_scenario(rack_cfg(seed, 2), &s);
        rack.run(10_000);
        (rack.hops_traversed(), rack.fabric_stats().sent.get())
    };
    assert_ne!(run(1), run(2), "seed must steer zipf traffic");
}

/// Acceptance: a `ZipfHotspot` run demonstrates measurably skewed per-link
/// load versus `Synthetic` uniform traffic on the same rack.
#[test]
fn zipf_hotspot_skews_per_link_load_beyond_uniform() {
    let cycles = 15_000u64;
    let mut uniform = Rack::with_scenario(
        rack_cfg(42, 4),
        &Synthetic::from_workload(Workload::AsyncRead {
            size: 256,
            poll_every: 4,
        })
        .with_pattern(TrafficPattern::Uniform),
    );
    uniform.run(cycles);
    let mut hot = Rack::with_scenario(rack_cfg(42, 4), &ZipfHotspot::default());
    hot.run(cycles);

    let u_skew = link_byte_skew(&uniform);
    let h_skew = link_byte_skew(&hot);
    assert!(
        h_skew > u_skew * 1.2,
        "zipf link skew {h_skew:.2}x must clearly exceed uniform {u_skew:.2}x"
    );

    // The hot node's incoming links carry the Zipf head: the busiest link
    // must touch node 0's neighborhood far harder than the rack mean, and
    // peak per-link bandwidth must exceed the uniform run's.
    assert!(
        hot.peak_link_gbps() >= uniform.peak_link_gbps(),
        "hotspot peak {} GBps vs uniform {} GBps",
        hot.peak_link_gbps(),
        uniform.peak_link_gbps()
    );
}

/// The hot node's RRPPs queue visibly harder than the rack average under
/// `ZipfHotspot` — the RRPP-queueing measurement the ROADMAP item asks for.
#[test]
fn zipf_hotspot_queues_the_hot_nodes_rrpps() {
    let mut hot = Rack::with_scenario(rack_cfg(5, 4), &ZipfHotspot::default());
    hot.run(20_000);
    let lats = hot.rrpp_mean_latencies();
    assert!(lats[0] > 0.0, "hot node serviced nothing: {lats:?}");
    let others: Vec<f64> = lats[1..].iter().copied().filter(|&l| l > 0.0).collect();
    assert!(!others.is_empty());
    let other_mean = others.iter().sum::<f64>() / others.len() as f64;
    assert!(
        lats[0] > other_mean,
        "hot node RRPP latency {:.0} should exceed the other nodes' mean {other_mean:.0}: {lats:?}",
        lats[0]
    );
}

/// A finite custom scenario: issues exactly `ops` async 64B reads, then
/// idles forever.
#[derive(Clone, Copy, Debug)]
struct FiniteReads {
    ops: u64,
}

impl Scenario for FiniteReads {
    fn name(&self) -> &str {
        "finite-reads"
    }
    fn for_core(&self, _ctx: &OpCtx) -> Box<dyn Scenario> {
        Box::new(*self)
    }
    fn next_op(&mut self, ctx: &OpCtx) -> Op {
        use rackni::ni_mem::Addr;
        use rackni::ni_qp::RemoteOp;
        if ctx.issued >= self.ops {
            return Op::Idle;
        }
        Op::Remote {
            op: RemoteOp::Read,
            to: 1,
            addr: Addr(rackni::ni_soc::REMOTE_BASE + ctx.issued * 64),
            size: 64,
            sync: false,
        }
    }
}

/// A finite scenario (N async ops, then `Op::Idle` forever) must still have
/// every completion reaped: the core drains outstanding CQ entries while
/// the scenario idles, even when the final issue count never hits a
/// `poll_every` multiple.
#[test]
fn finite_scenarios_reap_all_outstanding_completions() {
    let cfg = ChipConfig {
        active_cores: 1,
        ..ChipConfig::default()
    };
    // 3 is not a multiple of poll_every (4) and never fills the WQ, so only
    // the idle-drain path can reap these completions.
    let r = run_chip_scenario(cfg, &FiniteReads { ops: 3 }, 20_000);
    assert_eq!(r.ops, 3, "all issued ops must be reaped after going idle");
}

/// `reset_scenario` mid-run must not strand completions: in-flight pre-reset
/// ops and a short post-reset op burst are all reaped even though the reset
/// rewinds the issue counter the poll cadence is driven by.
#[test]
fn reset_scenario_keeps_reaping_across_the_reset() {
    use rackni::ni_soc::Chip;
    let cfg = ChipConfig {
        active_cores: 1,
        ..ChipConfig::default()
    };
    let mut chip = Chip::new(
        cfg,
        Workload::AsyncRead {
            size: 256,
            poll_every: 4,
        },
    );
    chip.run(15_000);
    let before = chip.completed_ops();
    assert!(before > 0, "pre-reset stream must make progress");
    chip.cores[0].reset_scenario(Box::new(FiniteReads { ops: 2 }));
    chip.run(15_000);
    assert!(
        chip.completed_ops() >= before + 2,
        "post-reset ops (and any in-flight pre-reset ops) must be reaped: \
         {} before, {} after",
        before,
        chip.completed_ops()
    );
}

/// `Core::set_target` (the pre-scenario retargeting API) must steer a
/// `Workload`-constructed rack's traffic, exactly as the old
/// `Chip::with_fabric` + `set_target` wiring did.
#[test]
fn set_target_steers_workload_rack_traffic() {
    let torus = Torus3D::new(2, 2, 2);
    let cfg = RackSimConfig {
        torus,
        chip: ChipConfig {
            active_cores: 1,
            ..ChipConfig::default()
        },
        traffic: TrafficPattern::Neighbor,
        ..RackSimConfig::default()
    };
    let mut rack = Rack::new(
        cfg,
        Workload::AsyncRead {
            size: 256,
            poll_every: 4,
        },
    );
    // On the neighbor ring only node 0 targets node 1; move that stream to
    // node 4 before anything runs.
    rack.chip_mut(0).cores[0].set_target(4);
    assert_eq!(rack.chips()[0].cores[0].target(), 4);
    rack.run(15_000);
    assert_eq!(
        rack.chips()[1].rrpp_mean_latency(),
        0.0,
        "node 1 must receive nothing after the retarget"
    );
    assert!(
        rack.chips()[4].app_payload_bytes() > 0,
        "node 4 must service the retargeted stream"
    );
}

/// Compatibility: the `Workload`/`TrafficPattern` constructors are thin
/// wrappers over `Synthetic` and still produce the pre-scenario behavior
/// (fixed per-core targets, pattern-derived destinations).
#[test]
fn workload_constructors_remain_thin_synthetic_wrappers() {
    let torus = Torus3D::new(2, 2, 2);
    let cfg = RackSimConfig {
        torus,
        chip: ChipConfig {
            active_cores: 2,
            ..ChipConfig::default()
        },
        traffic: TrafficPattern::Neighbor,
        ..RackSimConfig::default()
    };
    let rack = Rack::new(
        cfg,
        Workload::AsyncRead {
            size: 128,
            poll_every: 4,
        },
    );
    assert_eq!(rack.scenario_name(), "synthetic");
    for (node, chip) in rack.chips().iter().enumerate() {
        let expect = TrafficPattern::Neighbor.target(torus, node as u32, 0) as u16;
        assert_eq!(chip.cores[0].target(), expect, "node {node} core 0");
    }
}
