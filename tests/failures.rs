//! Failure-injection integration tests: the tier-1-sized versions of the
//! claims `examples/failure_study.rs` asserts at paper scale — a mid-run
//! link kill that `fault-adaptive` routes around while dimension-order
//! stalls into the ITT watchdog, a node kill that ends in error CQ entries
//! instead of a hang, and healthy-fabric equivalence between
//! `fault-adaptive` and `minimal-adaptive` through the whole rack stack.

use rackni::experiments::{run_failure_point, FailureParams, FaultCase};
use rackni::ni_fabric::{FaultPlan, ReplicaCfg, RoutingKind, Torus3D};
use rackni::ni_soc::{Capped, ChipConfig, Rack, RackSimConfig, Synthetic, Workload, ZipfHotspot};

/// Small-rack sweep parameters: tight enough for debug-profile tier-1
/// runs, loose enough that healthy transfers never trip the watchdog.
fn params() -> FailureParams {
    FailureParams {
        ops_per_core: 6,
        kill_at: 300,
        itt_timeout: 1_500,
        itt_retries: 1,
        horizon: 40_000,
    }
}

fn zipf_point(fault: FaultCase, routing: RoutingKind) -> rackni::experiments::FailurePoint {
    run_failure_point(
        (3, 3, 1),
        "zipf",
        Box::<ZipfHotspot>::default(),
        routing,
        fault,
        params(),
    )
}

/// The acceptance property at tier-1 size: after a mid-run link kill,
/// `fault-adaptive` completes the capped Zipf job with zero casualties
/// while dimension-order either never finishes or pays >=2x grinding
/// through ITT timeouts.
#[test]
fn fault_adaptive_completes_the_link_kill_job_dor_stalls_on() {
    let ada = zipf_point(FaultCase::LinkKill, RoutingKind::FaultAdaptive);
    assert!(
        ada.completed_all,
        "fault-adaptive must finish the job: {ada:?}"
    );
    assert_eq!(
        ada.failed_ops, 0,
        "a single dead link is routable-around: {ada:?}"
    );
    let dor = zipf_point(FaultCase::LinkKill, RoutingKind::DimensionOrder);
    assert!(
        dor.dead_link_stalls > 0,
        "DOR must actually hit the dead link: {dor:?}"
    );
    // The structural form of the acceptance property (the strict >=2x
    // completion-time version runs at 4x4x4 scale in
    // `examples/failure_study.rs`, where the margin is wide): health-blind
    // routing stalls into the ITT watchdog and loses ops the detour-capable
    // policy saves, and pays more cycles doing it.
    assert!(
        !dor.completed_all
            || (dor.itt_timeouts > 0
                && dor.failed_ops > ada.failed_ops
                && dor.completion_cycles > ada.completion_cycles),
        "DOR must stall into the watchdog and pay for it: dor {dor:?} vs ada {ada:?}"
    );
}

/// A node kill cannot be routed around, but it must not hang the rack:
/// every op addressed to the corpse completes with an error CQ status,
/// and the error ops stay out of the (successful-reads) latency tail.
#[test]
fn node_kill_completes_with_error_cq_entries_instead_of_hanging() {
    for routing in [RoutingKind::DimensionOrder, RoutingKind::FaultAdaptive] {
        let p = zipf_point(FaultCase::NodeKill, routing);
        assert!(p.completed_all, "{}: rack hung: {p:?}", routing.name());
        assert!(
            p.failed_ops > 0,
            "{}: killing the hot node must cost failures: {p:?}",
            routing.name()
        );
        assert!(
            p.completion_cycles < params().horizon,
            "{}: completion rode the horizon: {p:?}",
            routing.name()
        );
        assert!(
            p.packets_dropped > 0,
            "{}: the dead node must erase traffic: {p:?}",
            routing.name()
        );
        assert!(
            p.itt_timeouts >= p.failed_ops,
            "{}: every failure implies at least one watchdog expiry: {p:?}",
            routing.name()
        );
    }
}

/// Healthy-fabric cells are a control group: with no fault scheduled,
/// both policies finish clean and the watchdog never fires.
#[test]
fn healthy_cells_complete_clean_under_both_policies() {
    for routing in [RoutingKind::DimensionOrder, RoutingKind::FaultAdaptive] {
        let p = zipf_point(FaultCase::None, routing);
        assert!(p.completed_all && p.failed_ops == 0, "{p:?}");
        assert_eq!(p.itt_timeouts, 0, "spurious watchdog expiry: {p:?}");
        assert_eq!(p.escape_hops, 0, "no fault, no escapes: {p:?}");
    }
}

/// On a healthy fabric `fault-adaptive` must be bit-identical to
/// `minimal-adaptive` through the whole rack stack — same ops, payload,
/// hops, and per-link byte distribution (the route-level property is also
/// proptested in `ni-fabric`; this is the end-to-end version).
#[test]
fn fault_adaptive_is_bit_identical_to_minimal_adaptive_when_healthy() {
    let run = |routing: RoutingKind| {
        let cfg = RackSimConfig {
            torus: Torus3D::new(3, 3, 1),
            chip: ChipConfig {
                active_cores: 2,
                seed: 0xfa17,
                ..ChipConfig::default()
            },
            routing,
            threads: 1,
            ..RackSimConfig::default()
        };
        let capped = Capped::new(
            Box::new(Synthetic::from_workload(Workload::AsyncRead {
                size: 256,
                poll_every: 4,
            })),
            6,
        );
        let mut rack = Rack::with_scenario(cfg, &capped);
        rack.run(20_000);
        (
            rack.completed_ops(),
            rack.failed_ops(),
            rack.app_payload_bytes(),
            rack.hops_traversed(),
            rack.link_report()
                .iter()
                .map(|l| (l.packets, l.bytes))
                .collect::<Vec<_>>(),
        )
    };
    let ada = run(RoutingKind::MinimalAdaptive);
    let fa = run(RoutingKind::FaultAdaptive);
    assert!(ada.0 > 0, "reference run must do work");
    assert_eq!(fa, ada, "healthy fault-adaptive diverged from adaptive");
}

/// A repaired link comes back for real: a run whose plan kills a link and
/// repairs it later completes everything without a single failure, while
/// still having actually stalled at the dead link in between.
#[test]
fn link_repair_restores_the_job_without_casualties() {
    let torus = Torus3D::new(3, 1, 1);
    let mut chip = ChipConfig {
        active_cores: 1,
        ..ChipConfig::default()
    };
    // Watchdog armed but generous: the repair lands long before expiry.
    chip.rmc.itt_timeout = 20_000;
    chip.rmc.itt_retries = 1;
    let cfg = RackSimConfig {
        torus,
        chip,
        routing: RoutingKind::DimensionOrder,
        faults: FaultPlan::new().link_down(0, 1, 200).link_up(0, 1, 2_000),
        threads: 1,
        ..RackSimConfig::default()
    };
    let capped = Capped::new(
        Box::new(Synthetic::from_workload(Workload::AsyncRead {
            size: 256,
            poll_every: 2,
        })),
        4,
    );
    let mut rack = Rack::with_scenario(cfg, &capped);
    let expected = 3 * 4;
    let mut guard = 0;
    while rack.completed_ops() < expected {
        rack.run(500);
        guard += 1;
        assert!(guard < 200, "repaired job never completed");
    }
    assert_eq!(rack.failed_ops(), 0, "repair must beat the watchdog");
    assert!(
        rack.fault_stats().dead_link_stalls.get() > 0,
        "the kill window must have actually stalled traffic"
    );
}

/// A recovery-enabled rack: K-way replication + WQ replay armed, node 4
/// killed mid-run, fault-adaptive routing, a capped job so completion is
/// checkable. Shared by the two transparent-recovery property tests below.
fn recovery_rack(workload: Workload, k: u8, w: u8) -> (Rack, u32, u64) {
    let killed = 4u32;
    let mut chip = ChipConfig {
        active_cores: 2,
        seed: 0x4ec1,
        ..ChipConfig::default()
    };
    chip.rmc.itt_timeout = 1_500;
    chip.rmc.itt_retries = 1;
    chip.rmc.replication = ReplicaCfg { k, w, seed: 0x4ec1 };
    chip.rmc.replay_budget = u32::from(k.max(1)) - 1;
    let cfg = RackSimConfig {
        torus: Torus3D::new(3, 3, 1),
        chip,
        routing: RoutingKind::FaultAdaptive,
        faults: FaultPlan::new().node_down(killed, 300),
        threads: 1,
        ..RackSimConfig::default()
    };
    let ops_per_core = 6u64;
    let capped = Capped::new(Box::new(Synthetic::from_workload(workload)), ops_per_core);
    let mut rack = Rack::with_scenario(cfg, &capped);
    // 8 surviving nodes x 2 cores x 6 ops; the corpse's own job is void.
    let survivor_expected = 8 * 2 * ops_per_core;
    let mut guard = 0;
    loop {
        rack.run(2_000);
        let done: u64 = rack
            .chips()
            .iter()
            .enumerate()
            .filter(|&(n, _)| n as u32 != killed)
            .map(|(_, c)| c.completed_ops())
            .sum();
        if done >= survivor_expected {
            break;
        }
        guard += 1;
        assert!(
            guard < 100,
            "survivors never completed the job: {done}/{survivor_expected}"
        );
    }
    // With W=1 a quorum write notifies on the first ack, so the job can
    // finish while legs addressed to the corpse are still in flight. Drain
    // past the watchdog so every straggler leg resolves before we inspect
    // the counters.
    rack.run(8_000);
    (rack, killed, survivor_expected)
}

/// The tentpole acceptance property at tier-1 size: with K=2 replicas and
/// WQ replay armed, a node kill loses ZERO reads on surviving nodes —
/// every read addressed to the corpse replays toward the alternate replica
/// and completes, degraded but successful.
#[test]
fn node_kill_at_k2_loses_zero_reads_on_survivors() {
    let (rack, killed, _) = recovery_rack(
        Workload::AsyncRead {
            size: 256,
            poll_every: 4,
        },
        2,
        1,
    );
    for (n, chip) in rack.chips().iter().enumerate() {
        if n as u32 == killed {
            continue;
        }
        assert_eq!(
            chip.failed_reads(),
            0,
            "survivor {n} lost reads despite K=2 + replay"
        );
    }
    let be = rack.backend_stats();
    assert!(
        be.replays.get() > 0,
        "recovery must actually run through the replay path"
    );
    assert!(
        rack.degraded_ops() > 0,
        "replayed reads must surface the degraded completion flag"
    );
}

/// Quorum writes survive one dead replica: with K=2/W=1 every write fans
/// out to both replicas and completes on the surviving ack, so survivors
/// see no error completions and the dead legs land in the leg-failure
/// counter instead of `failed_transfers`.
#[test]
fn quorum_writes_survive_one_dead_replica() {
    let (rack, killed, _) = recovery_rack(
        Workload::AsyncWrite {
            size: 256,
            poll_every: 4,
        },
        2,
        1,
    );
    for (n, chip) in rack.chips().iter().enumerate() {
        if n as u32 == killed {
            continue;
        }
        assert_eq!(chip.failed_ops(), 0, "survivor {n} saw an error CQ entry");
    }
    let be = rack.backend_stats();
    assert!(
        be.quorum_writes.get() > 0,
        "K=2 writes must fan out through the quorum table"
    );
    assert!(
        be.quorum_leg_failures.get() > 0,
        "the dead replica's legs must be absorbed by the quorum"
    );
}
