//! Multi-node rack integration tests: cross-node request/response semantics
//! over the real torus fabric, the latency floor of the wires, per-link
//! accounting, and bit-exact reproducibility from the config seed.

use rackni::ni_fabric::Torus3D;
use rackni::ni_mem::Addr;
use rackni::ni_soc::{Chip, ChipConfig, Rack, RackSimConfig, TrafficPattern, Workload};

const REMOTE_BASE: u64 = 1 << 40;

fn rack_cfg(torus: Torus3D, active_cores: usize, traffic: TrafficPattern) -> RackSimConfig {
    RackSimConfig {
        torus,
        chip: ChipConfig {
            active_cores,
            ..ChipConfig::default()
        },
        traffic,
        ..RackSimConfig::default()
    }
}

fn run_until(rack: &mut Rack, limit: u64, mut done: impl FnMut(&Rack) -> bool) {
    let mut guard = 0u64;
    while !done(rack) {
        rack.tick();
        guard += 1;
        assert!(guard < limit, "rack run exceeded {limit} cycles");
    }
}

/// Satellite requirement: node A remote-writes a block homed on node B,
/// then remote-reads it back — the value round-trips through B's actual
/// memory hierarchy, and both operations pay at least the physical network
/// floor of `2 x hops x 70` cycles (35 ns per hop at 2 GHz).
#[test]
fn cross_node_write_then_read_round_trips_through_remote_memory() {
    let torus = Torus3D::new(2, 2, 2);
    // Opposite pattern: node 0 targets its antipode, node 7, 3 hops away.
    let mut rack = Rack::new(
        rack_cfg(torus, 1, TrafficPattern::Opposite),
        Workload::SyncWrite { size: 64 },
    );
    let target = rack.chips()[0].cores[0].target();
    assert_eq!(u32::from(target), 7);
    let hops = u64::from(torus.hops(0, u32::from(target)));
    assert_eq!(hops, 3);

    // Seed the payload in node 0's local buffer; node 7's remote region
    // starts clean so the landing is observable.
    const TOKEN: u64 = 0xfeed_c0de_0123_4567;
    let lbuf = Addr(rack.chips()[0].cores[0].local_buf().0).block();
    let remote = Addr(REMOTE_BASE).block();
    rack.chip_mut(0).poke_block(lbuf, TOKEN);
    assert_eq!(rack.chips()[7].peek_block(remote), 0, "remote starts clean");

    // Phase 1: the write crosses the rack and lands in node 7's memory.
    run_until(&mut rack, 200_000, |r| r.chips()[0].completed_ops() >= 1);
    assert_eq!(
        rack.chips()[7].peek_block(remote),
        TOKEN,
        "write payload must land in the remote node's memory"
    );
    let write_lat = rack.chips()[0].cores[0].stats.latency.mean();
    assert!(
        write_lat >= (2 * hops * 70) as f64,
        "write latency {write_lat} beats the 2 x {hops} x 70 network floor"
    );

    // Phase 2: clear the local buffer and read the block back.
    rack.chip_mut(0).poke_block(lbuf, 0);
    rack.chip_mut(0).cores[0].reset_workload(Workload::SyncRead { size: 64 });
    run_until(&mut rack, 400_000, |r| r.chips()[0].completed_ops() >= 2);
    assert_eq!(
        rack.chips()[0].peek_block(lbuf),
        TOKEN,
        "read must return the value written in phase 1"
    );
    let mean_lat = rack.chips()[0].cores[0].stats.latency.mean();
    assert!(
        mean_lat >= (2 * hops * 70) as f64,
        "mean op latency {mean_lat} beats the network floor"
    );
}

/// An 8-node rack completes real traffic on every node, and the fabric's
/// per-directed-link counters account every hop traversed.
#[test]
fn eight_node_rack_completes_ops_on_every_node() {
    let mut rack = Rack::new(
        rack_cfg(Torus3D::new(2, 2, 2), 2, TrafficPattern::Uniform),
        Workload::SyncRead { size: 64 },
    );
    rack.run(15_000);
    for chip in rack.chips() {
        assert!(
            chip.completed_ops() > 0,
            "node {} completed nothing",
            chip.node_id()
        );
        assert!(
            chip.app_payload_bytes() > 0,
            "node {} moved no payload",
            chip.node_id()
        );
    }
    let link_sum: u64 = rack.link_report().iter().map(|l| l.packets).sum();
    assert_eq!(link_sum, rack.hops_traversed());
    assert!(rack.peak_link_gbps() > 0.0);
    let fs = rack.fabric_stats();
    assert!(fs.sent.get() > 0 && fs.responded.get() > 0);
}

/// NUMA-mode loads (no QP machinery) also cross the real torus and find
/// their way back to the issuing core.
#[test]
fn numa_workload_crosses_the_torus() {
    let mut rack = Rack::new(
        rack_cfg(Torus3D::new(2, 1, 1), 1, TrafficPattern::Neighbor),
        Workload::NumaRead,
    );
    run_until(&mut rack, 100_000, |r| {
        r.chips().iter().all(|c| c.completed_ops() >= 3)
    });
    // One hop each way at 70 cycles plus remote service: well above 140.
    let lat = rack.chips()[0].cores[0].stats.latency.mean();
    assert!(lat >= 140.0, "NUMA latency {lat} beats the wire floor");
}

/// The two-phase parallel tick is bit-identical to the serial path: the
/// same seeded 3x3x3 scenario run (a) serially via `Rack::tick`, (b) through
/// `Rack::run` pinned to one worker, and (c) through `Rack::run` with four
/// workers must produce byte-equal `FabricStats`, completed-op counts,
/// per-node RRPP mean latencies, hop counts, and payload bytes.
#[test]
fn parallel_rack_is_bit_identical_to_serial_at_any_thread_count() {
    #[derive(Debug, PartialEq)]
    struct Fingerprint {
        sent: u64,
        responded: u64,
        incoming: u64,
        completed_ops: u64,
        payload_bytes: u64,
        hops: u64,
        rrpp_means: Vec<f64>,
        per_node_ops: Vec<u64>,
    }
    let fingerprint = |rack: &Rack| {
        let fs = rack.fabric_stats();
        Fingerprint {
            sent: fs.sent.get(),
            responded: fs.responded.get(),
            incoming: fs.incoming_generated.get(),
            completed_ops: rack.completed_ops(),
            payload_bytes: rack.app_payload_bytes(),
            hops: rack.hops_traversed(),
            rrpp_means: rack.rrpp_mean_latencies(),
            per_node_ops: rack.chips().iter().map(|c| c.completed_ops()).collect(),
        }
    };
    let cycles = 1_500u64;
    let build = |threads: usize| {
        let mut cfg = rack_cfg(Torus3D::new(3, 3, 3), 2, TrafficPattern::Uniform);
        cfg.chip.seed = 0xd15c0;
        cfg.threads = threads;
        Rack::new(
            cfg,
            Workload::AsyncRead {
                size: 256,
                poll_every: 4,
            },
        )
    };

    let mut serial = build(1);
    for _ in 0..cycles {
        serial.tick();
    }
    let want = fingerprint(&serial);
    assert!(want.completed_ops > 0, "reference run must do real work");
    assert!(want.hops > 0, "reference run must cross the fabric");

    for threads in [1usize, 4] {
        let mut rack = build(threads);
        rack.run(cycles);
        assert_eq!(
            fingerprint(&rack),
            want,
            "{threads}-thread run diverged from the serial reference"
        );
    }
}

/// A run with a `FaultPlan` — link kill, node kill, and a repair, with the
/// ITT watchdog armed — is still a pure function of its config: serial
/// ticking, one worker, and four workers must produce byte-equal traffic
/// counters, completed/failed op counts, fault-path counters, and watchdog
/// statistics. All fault state lives in the driver-side fabric and the
/// per-chip backends, so thread count can never observe it mid-change.
#[test]
fn faulted_rack_runs_are_bit_identical_across_thread_counts() {
    use rackni::ni_fabric::FaultPlan;

    #[derive(Debug, PartialEq)]
    struct Fingerprint {
        sent: u64,
        responded: u64,
        completed_ops: u64,
        failed_ops: u64,
        hops: u64,
        dropped: u64,
        stalls: u64,
        escapes: u64,
        timeouts: u64,
        retries: u64,
        per_node_ops: Vec<u64>,
    }
    let fingerprint = |rack: &Rack| {
        let fs = rack.fabric_stats();
        let fstats = rack.fault_stats();
        let be = rack.backend_stats();
        Fingerprint {
            sent: fs.sent.get(),
            responded: fs.responded.get(),
            completed_ops: rack.completed_ops(),
            failed_ops: rack.failed_ops(),
            hops: rack.hops_traversed(),
            dropped: fstats.packets_dropped.get(),
            stalls: fstats.dead_link_stalls.get(),
            escapes: fstats.escape_hops.get(),
            timeouts: be.itt_timeouts.get(),
            retries: be.itt_retries.get(),
            per_node_ops: rack.chips().iter().map(|c| c.completed_ops()).collect(),
        }
    };
    let build = |threads: usize| {
        let mut cfg = rack_cfg(Torus3D::new(3, 3, 1), 2, TrafficPattern::Uniform);
        cfg.chip.seed = 0xfa117;
        cfg.chip.rmc.itt_timeout = 1_200;
        cfg.chip.rmc.itt_retries = 1;
        cfg.threads = threads;
        cfg.routing = rackni::ni_fabric::RoutingKind::FaultAdaptive;
        cfg.faults = FaultPlan::new()
            .link_down(0, 1, 400)
            .node_down(4, 900)
            .link_up(0, 1, 2_200);
        Rack::new(
            cfg,
            Workload::AsyncRead {
                size: 256,
                poll_every: 4,
            },
        )
    };
    let cycles = 6_000u64;
    let mut serial = build(1);
    for _ in 0..cycles {
        serial.tick();
    }
    let want = fingerprint(&serial);
    assert!(want.completed_ops > 0, "reference run must do work");
    assert!(
        want.dropped > 0 && want.timeouts > 0,
        "the fault plan must actually bite: {want:?}"
    );
    for threads in [1usize, 4] {
        let mut rack = build(threads);
        rack.run(cycles);
        assert_eq!(
            fingerprint(&rack),
            want,
            "{threads}-thread faulted run diverged from the serial reference"
        );
    }
}

/// Reproducibility: a rack run is a pure function of its config (seed
/// included), and the emulator path reproduces from `ChipConfig::seed`
/// alone.
#[test]
fn rack_runs_are_reproducible_from_the_config_seed() {
    let run = |seed: u64| {
        let mut cfg = rack_cfg(Torus3D::new(2, 2, 1), 2, TrafficPattern::Uniform);
        cfg.chip.seed = seed;
        let mut rack = Rack::new(
            cfg,
            Workload::AsyncRead {
                size: 256,
                poll_every: 4,
            },
        );
        rack.run(8_000);
        (
            rack.completed_ops(),
            rack.app_payload_bytes(),
            rack.hops_traversed(),
            rack.fabric_stats().responded.get(),
        )
    };
    assert_eq!(run(42), run(42), "same seed must reproduce bit-identically");

    let emulated = |seed: u64| {
        let cfg = ChipConfig {
            seed,
            active_cores: 4,
            ..ChipConfig::default()
        };
        let mut chip = Chip::new(
            cfg,
            Workload::AsyncRead {
                size: 256,
                poll_every: 4,
            },
        );
        chip.run(8_000);
        (
            chip.completed_ops(),
            chip.app_payload_bytes(),
            chip.fabric_stats().incoming_generated.get(),
        )
    };
    assert_eq!(emulated(7), emulated(7));
}

/// The rack-scale experiment sweep produces structurally sound rows.
#[test]
fn rack_scale_experiment_reports_scaling_rows() {
    use rackni::experiments::{rack_scale, Scale};
    let pts = rack_scale(Scale::Quick, TrafficPattern::Uniform);
    assert_eq!(pts.len(), 3);
    for p in &pts {
        assert_eq!(
            p.nodes,
            u32::from(p.dims.0) * u32::from(p.dims.1) * u32::from(p.dims.2)
        );
        assert!(p.completed_ops > 0, "{:?} rack idle", p.dims);
        assert!(p.agg_ni_gbps > 0.0);
        if p.nodes > 1 {
            assert!(p.peak_link_gbps > 0.0);
            assert!(
                p.mean_hops >= 1.0,
                "{:?}: mean hops {}",
                p.dims,
                p.mean_hops
            );
        }
    }
    // More nodes, more aggregate NI throughput (each node adds both
    // requesters and servers).
    assert!(
        pts.last().expect("rows").agg_ni_gbps > pts[0].agg_ni_gbps,
        "aggregate bandwidth should grow with rack size"
    );
}

// ---- Event-driven tick equivalence -----------------------------------------

/// Shared observable fingerprint for the tick-mode equivalence tests:
/// everything a reordered, duplicated, or dropped delivery could perturb —
/// aggregate and per-node completion counts, traffic/fault counters, and
/// the RRPP latency means (which change if any packet's *timing* moves).
#[derive(Debug, PartialEq)]
struct TickFingerprint {
    sent: u64,
    responded: u64,
    incoming: u64,
    completed_ops: u64,
    failed_ops: u64,
    payload_bytes: u64,
    hops: u64,
    dropped: u64,
    stalls: u64,
    escapes: u64,
    timeouts: u64,
    retries: u64,
    rrpp_means: Vec<f64>,
    per_node_ops: Vec<u64>,
}

fn tick_fingerprint(rack: &Rack) -> TickFingerprint {
    let fs = rack.fabric_stats();
    let fstats = rack.fault_stats();
    let be = rack.backend_stats();
    TickFingerprint {
        sent: fs.sent.get(),
        responded: fs.responded.get(),
        incoming: fs.incoming_generated.get(),
        completed_ops: rack.completed_ops(),
        failed_ops: rack.failed_ops(),
        payload_bytes: rack.app_payload_bytes(),
        hops: rack.hops_traversed(),
        dropped: fstats.packets_dropped.get(),
        stalls: fstats.dead_link_stalls.get(),
        escapes: fstats.escape_hops.get(),
        timeouts: be.itt_timeouts.get(),
        retries: be.itt_retries.get(),
        rrpp_means: rack.rrpp_mean_latencies(),
        per_node_ops: rack.chips().iter().map(|c| c.completed_ops()).collect(),
    }
}

/// Tentpole acceptance: the event-driven chip tick (activity sets + dormant
/// skip) is bit-identical to the poll-everything reference on a healthy
/// rack — the same seeded 3x3x3 scenario run serially under poll sets the
/// reference, and both tick modes through `Rack::run` at one and four
/// workers must reproduce it exactly.
#[test]
fn event_tick_is_bit_identical_to_poll_on_a_healthy_rack() {
    use rackni::ni_soc::TickMode;

    let build = |mode: TickMode, threads: usize| {
        let mut cfg = rack_cfg(Torus3D::new(3, 3, 3), 2, TrafficPattern::Uniform);
        cfg.chip.seed = 0x71c5;
        cfg.chip.tick_mode = mode;
        cfg.threads = threads;
        Rack::new(
            cfg,
            Workload::AsyncRead {
                size: 256,
                poll_every: 4,
            },
        )
    };
    let cycles = 1_500u64;
    let mut reference = build(TickMode::Poll, 1);
    for _ in 0..cycles {
        reference.tick();
    }
    let want = tick_fingerprint(&reference);
    assert!(want.completed_ops > 0, "reference run must do real work");
    assert!(want.hops > 0, "reference run must cross the fabric");

    for mode in [TickMode::Poll, TickMode::Event] {
        for threads in [1usize, 4] {
            let mut rack = build(mode, threads);
            rack.run(cycles);
            assert_eq!(
                tick_fingerprint(&rack),
                want,
                "{mode:?} tick at {threads} threads diverged from the \
                 serial poll reference"
            );
        }
    }
}

/// Same contract on a *faulted* fabric: with a link kill, a node kill, a
/// repair, and the ITT watchdog firing, the event tick must still match
/// the poll reference bit-for-bit at every thread count — fault counters,
/// watchdog statistics, and per-node completions included.
#[test]
fn event_tick_is_bit_identical_to_poll_on_a_faulted_rack() {
    use rackni::ni_fabric::FaultPlan;
    use rackni::ni_soc::TickMode;

    let build = |mode: TickMode, threads: usize| {
        let mut cfg = rack_cfg(Torus3D::new(3, 3, 1), 2, TrafficPattern::Uniform);
        cfg.chip.seed = 0xfa117;
        cfg.chip.tick_mode = mode;
        cfg.chip.rmc.itt_timeout = 1_200;
        cfg.chip.rmc.itt_retries = 1;
        cfg.threads = threads;
        cfg.routing = rackni::ni_fabric::RoutingKind::FaultAdaptive;
        cfg.faults = FaultPlan::new()
            .link_down(0, 1, 400)
            .node_down(4, 900)
            .link_up(0, 1, 2_200);
        Rack::new(
            cfg,
            Workload::AsyncRead {
                size: 256,
                poll_every: 4,
            },
        )
    };
    let cycles = 6_000u64;
    let mut reference = build(TickMode::Poll, 1);
    for _ in 0..cycles {
        reference.tick();
    }
    let want = tick_fingerprint(&reference);
    assert!(want.completed_ops > 0, "reference run must do work");
    assert!(
        want.dropped > 0 && want.timeouts > 0,
        "the fault plan must actually bite: {want:?}"
    );

    for mode in [TickMode::Poll, TickMode::Event] {
        for threads in [1usize, 4] {
            let mut rack = build(mode, threads);
            rack.run(cycles);
            assert_eq!(
                tick_fingerprint(&rack),
                want,
                "{mode:?} tick at {threads} threads diverged from the \
                 serial poll reference on the faulted fabric"
            );
        }
    }
}

mod tick_equivalence_props {
    use super::*;
    use proptest::prelude::*;
    use rackni::ni_fabric::RoutingKind;
    use rackni::ni_soc::{builtin_scenarios, Bursty, Scenario, Synthetic, TickMode};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Next-event skipping never reorders or drops a delivery: across
        /// every builtin scenario — plus a `Bursty` duty-cycled one, whose
        /// `IdleFor` windows are exactly what the dormant fast path and
        /// idle-until-X jumps elide — and every routing policy, a seeded
        /// 2x2x2 rack produces identical fingerprints (traffic counters,
        /// per-node completions, RRPP latency means) under the poll and
        /// event ticks.
        #[test]
        fn event_tick_preserves_deliveries_across_scenarios_and_policies(
            scenario_idx in 0usize..5,
            routing_idx in 0usize..3,
            seed in 0u64..1_000_000,
        ) {
            let routing = [
                RoutingKind::DimensionOrder,
                RoutingKind::MinimalAdaptive,
                RoutingKind::FaultAdaptive,
            ][routing_idx];
            let run = |mode: TickMode| {
                let mut cfg = rack_cfg(Torus3D::new(2, 2, 2), 2, TrafficPattern::Uniform);
                cfg.chip.seed = seed;
                cfg.chip.tick_mode = mode;
                cfg.routing = routing;
                cfg.threads = 1;
                let scenario: Box<dyn Scenario> = if scenario_idx == 4 {
                    Box::new(Bursty::new(
                        Box::new(Synthetic::from_workload(Workload::AsyncRead {
                            size: 64,
                            poll_every: 2,
                        })),
                        2,
                        1_000,
                    ))
                } else {
                    builtin_scenarios().swap_remove(scenario_idx)
                };
                let mut rack = Rack::with_scenario(cfg, &*scenario);
                rack.run(4_000);
                tick_fingerprint(&rack)
            };
            let poll = run(TickMode::Poll);
            let event = run(TickMode::Event);
            prop_assert_eq!(
                &poll,
                &event,
                "scenario {} under {:?} (seed {}) diverged between tick modes",
                scenario_idx,
                routing,
                seed
            );
        }
    }
}

/// A degenerate 1x1x1 "rack" routes self-traffic without touching links
/// and still makes progress against its own RRPPs.
#[test]
fn degenerate_single_node_rack_services_itself() {
    let mut rack = Rack::new(
        rack_cfg(Torus3D::new(1, 1, 1), 1, TrafficPattern::Neighbor),
        Workload::SyncRead { size: 64 },
    );
    run_until(&mut rack, 100_000, |r| r.chips()[0].completed_ops() >= 2);
    assert_eq!(rack.hops_traversed(), 0, "self traffic crosses no links");
}
