//! Remote-write path integration tests.
//!
//! soNUMA's one-sided operations include writes (§2.2): the RGP backend
//! loads each payload block from local memory (Fig. 4a's "Memory Read"
//! stage) before shipping it, and the remote RRPP absorbs it into memory.
//! The paper's evaluation uses reads; these tests cover the symmetric path
//! the architecture defines.

use rackni::ni_rmc::NiPlacement;
use rackni::ni_soc::{
    run_sync_latency, run_sync_write_latency, run_write_bandwidth, Chip, ChipConfig, Topology,
    Workload,
};

fn cfg(p: NiPlacement) -> ChipConfig {
    ChipConfig {
        placement: p,
        ..ChipConfig::default()
    }
}

#[test]
fn sync_writes_complete_on_every_design() {
    for p in NiPlacement::QP_DESIGNS {
        let r = run_sync_write_latency(cfg(p), 64, 4);
        assert_eq!(r.ops, 4, "{p:?}");
        assert!(
            r.mean_cycles > 300.0 && r.mean_cycles < 2500.0,
            "{p:?}: {} cycles",
            r.mean_cycles
        );
    }
}

#[test]
fn write_latency_exceeds_read_latency_by_a_local_memory_access() {
    // The write path adds a local read (directory + DRAM, ~150-250 cycles)
    // before the block can leave the node.
    let read = run_sync_latency(cfg(NiPlacement::Split), 64, 5).mean_cycles;
    let write = run_sync_write_latency(cfg(NiPlacement::Split), 64, 5).mean_cycles;
    assert!(write > read + 50.0, "write {write} vs read {read}");
    assert!(write < read + 400.0, "write {write} vs read {read}");
}

#[test]
fn multiblock_writes_unroll_completely() {
    let r = run_sync_write_latency(cfg(NiPlacement::Split), 4096, 3);
    assert_eq!(r.ops, 3);
    let small = run_sync_write_latency(cfg(NiPlacement::Split), 64, 3);
    assert!(r.mean_cycles > small.mean_cycles + 60.0);
}

#[test]
fn write_bandwidth_moves_payload_both_ways() {
    let r = run_write_bandwidth(cfg(NiPlacement::Split), 1024, 30_000, 3);
    assert!(
        r.app_gbps > 10.0,
        "write bandwidth collapsed: {}",
        r.app_gbps
    );
    assert!(r.cycles >= 30_000);
}

#[test]
fn rrpps_absorb_mirrored_incoming_writes() {
    let mut chip = Chip::new(
        cfg(NiPlacement::Split),
        Workload::AsyncWrite {
            size: 512,
            poll_every: 4,
        },
    );
    chip.run(30_000);
    assert!(chip.completed_ops() > 0);
    // Mirrored traffic means incoming write requests hit the local RRPPs.
    assert_eq!(
        chip.fabric_stats().sent.get(),
        chip.fabric_stats().incoming_generated.get()
    );
    assert!(chip.rrpp_mean_latency() > 0.0);
    assert!(chip.app_payload_bytes() > 0);
}

#[test]
fn writes_work_on_nocout_too() {
    let mut c = cfg(NiPlacement::Split);
    c.topology = Topology::NocOut;
    let r = run_sync_write_latency(c, 64, 3);
    assert_eq!(r.ops, 3);
}

#[test]
fn per_tile_write_unrolls_read_local_payload_first() {
    // NIper-tile backends sit at the tiles; their payload loads go through
    // the regular non-caching path and the unrolled writes detour via the
    // edge NI. The op must still complete with the same semantics.
    let r = run_sync_write_latency(cfg(NiPlacement::PerTile), 1024, 3);
    assert_eq!(r.ops, 3);
}
