//! Torus routing-policy integration tests: the dimension-order fingerprint
//! (the refactor to `ni_fabric::RoutingPolicy` must not move a single bit),
//! the congestion-balancing property of minimal-adaptive routing, seed
//! determinism of the random baseline, and the capped-job completion
//! machinery the routing sweep is built on.

use rackni::experiments::run_routing_point;
use rackni::ni_fabric::{RoutingKind, Torus3D};
use rackni::ni_soc::{
    Capped, ChipConfig, Rack, RackSimConfig, TrafficPattern, Workload, ZipfHotspot,
};

fn canonical_rack(routing: RoutingKind) -> Rack {
    let cfg = RackSimConfig {
        torus: Torus3D::new(3, 3, 3),
        chip: ChipConfig {
            active_cores: 2,
            seed: 0xf00d,
            ..ChipConfig::default()
        },
        routing,
        traffic: TrafficPattern::Uniform,
        threads: 1,
        ..RackSimConfig::default()
    };
    Rack::new(
        cfg,
        Workload::AsyncRead {
            size: 256,
            poll_every: 4,
        },
    )
}

/// `DimensionOrder` through the `RoutingPolicy` trait must be bit-identical
/// to the pre-refactor hard-coded `Torus3D::next_hop` routing. The expected
/// numbers are the *recorded pre-refactor fingerprint* of this exact run
/// (3x3x3 rack, 2 cores/node, seed 0xf00d, uniform async 256B reads, 2000
/// cycles), captured on the commit before the policy trait existed — any
/// drift here means the refactor changed routing behavior.
#[test]
fn dimension_order_matches_the_pre_refactor_fingerprint() {
    let mut rack = canonical_rack(RoutingKind::DimensionOrder);
    rack.run(2_000);
    let fs = rack.fabric_stats();
    assert_eq!(fs.sent.get(), 3_888, "requests injected");
    assert_eq!(fs.responded.get(), 2_916, "responses delivered");
    assert_eq!(fs.incoming_generated.get(), 3_558, "requests delivered");
    assert_eq!(rack.hops_traversed(), 11_541, "link traversals");
    assert_eq!(rack.completed_ops(), 504, "completed ops");
    assert_eq!(rack.app_payload_bytes(), 393_792, "payload bytes");
    let links = rack.link_report();
    assert_eq!(links.iter().map(|l| l.bytes).sum::<u64>(), 702_048);
    assert_eq!(links.iter().map(|l| l.busy_cycles).sum::<u64>(), 43_878);
    assert!((rack.link_byte_skew() - 1.562_149_597).abs() < 1e-6);
}

/// Minimal-adaptive routing must preserve *what* is delivered even as it
/// changes *which links* carry it: the same capped job run to completion
/// gives identical application-level results (ops, payload,
/// request/response counts) and an identical total hop count (every
/// built-in policy is minimal, and capped op streams do not depend on
/// completion timing) — but a different per-link byte distribution than
/// dimension order.
#[test]
fn adaptive_routing_changes_paths_but_not_outcomes() {
    let run = |routing: RoutingKind| {
        let cfg = RackSimConfig {
            torus: Torus3D::new(3, 3, 1),
            chip: ChipConfig {
                active_cores: 2,
                seed: 0xf00d,
                ..ChipConfig::default()
            },
            routing,
            threads: 1,
            ..RackSimConfig::default()
        };
        let inner = rackni::ni_soc::Synthetic::from_workload(Workload::AsyncRead {
            size: 256,
            poll_every: 4,
        })
        .with_pattern(TrafficPattern::Uniform);
        let capped = Capped::new(Box::new(inner), 6);
        let mut rack = Rack::with_scenario(cfg, &capped);
        let expected = 9 * 2 * 6;
        let mut guard = 0;
        while rack.completed_ops() < expected {
            rack.run(200);
            guard += 1;
            assert!(guard < 500, "{routing:?} job never completed");
        }
        rack.run(1_000); // drain every response off the wires
        rack
    };
    let dor = run(RoutingKind::DimensionOrder);
    let ada = run(RoutingKind::MinimalAdaptive);
    assert_eq!(ada.completed_ops(), dor.completed_ops());
    assert_eq!(ada.app_payload_bytes(), dor.app_payload_bytes());
    assert_eq!(ada.fabric_stats().sent.get(), dor.fabric_stats().sent.get());
    assert_eq!(
        ada.hops_traversed(),
        dor.hops_traversed(),
        "minimal policies must spend identical total hops on identical jobs"
    );
    let bytes = |r: &Rack| r.link_report().iter().map(|l| l.bytes).collect::<Vec<_>>();
    assert_ne!(
        bytes(&ada),
        bytes(&dor),
        "adaptive routing under load must actually deviate from DOR"
    );
}

/// The acceptance property of the routing sweep, at tier-1-test size: on
/// Zipf-hotspot traffic, minimal-adaptive routing spreads the hot node's
/// incoming load over more links than dimension order, strictly reducing
/// `link_byte_skew`, while completing the identical capped job. (The
/// full-size 4x4x4 comparison runs in `examples/routing_study.rs`, which
/// asserts the same property at the paper-facing scale.)
#[test]
fn adaptive_routing_reduces_zipf_link_skew() {
    let run = |routing: RoutingKind| {
        run_routing_point(
            (3, 3, 1),
            "zipf",
            Box::<ZipfHotspot>::default(),
            routing,
            8,
            60_000,
        )
    };
    let dor = run(RoutingKind::DimensionOrder);
    let ada = run(RoutingKind::MinimalAdaptive);
    assert_eq!(dor.completed_ops, dor.expected_ops, "DOR job must finish");
    assert_eq!(
        ada.completed_ops, ada.expected_ops,
        "adaptive job must finish"
    );
    assert_eq!(ada.hops, dor.hops, "minimal policies traverse equal hops");
    assert!(
        ada.link_skew < dor.link_skew,
        "adaptive skew {:.2} must undercut DOR skew {:.2} on hotspot traffic",
        ada.link_skew,
        dor.link_skew
    );
    // Reads complete, so the tail metric has real samples on both.
    assert!(dor.p99_read_cycles >= dor.p50_read_cycles);
    assert!(ada.p99_read_cycles >= ada.p50_read_cycles);
    assert!(dor.p50_read_cycles > 0);
}

/// The random-minimal baseline is seeded: same seed, same rack, bit-equal
/// results; the seed is part of the config, so determinism survives the
/// whole chip/rack stack, not just the bare fabric.
#[test]
fn random_minimal_rack_reproduces_from_its_seed() {
    let run = |seed: u64| {
        let mut rack = canonical_rack(RoutingKind::RandomMinimal { seed });
        rack.run(1_200);
        (
            rack.completed_ops(),
            rack.hops_traversed(),
            rack.link_report()
                .iter()
                .map(|l| (l.packets, l.bytes))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(11), run(11), "same routing seed must reproduce");
}

/// `Capped` turns any scenario into a finite job: the rack completes
/// exactly `nodes x cores x cap` operations, then quiesces (is_done lets
/// chips take the fast path), and per-op read-latency tracking covers the
/// asynchronous ops the sync-only histogram never sees.
#[test]
fn capped_jobs_complete_exactly_and_record_async_read_tails() {
    let cfg = RackSimConfig {
        torus: Torus3D::new(2, 2, 1),
        chip: ChipConfig {
            active_cores: 2,
            ..ChipConfig::default()
        },
        threads: 1,
        ..RackSimConfig::default()
    };
    let inner = rackni::ni_soc::Synthetic::from_workload(Workload::AsyncRead {
        size: 256,
        poll_every: 4,
    });
    let capped = Capped::new(Box::new(inner), 5);
    assert_eq!(capped.ops_per_core(), 5);
    let mut rack = Rack::with_scenario(cfg, &capped);
    let expected = 4 * 2 * 5;
    let mut guard = 0;
    while rack.completed_ops() < expected {
        rack.run(200);
        guard += 1;
        assert!(guard < 500, "capped job never completed");
    }
    // Run on: no further ops may appear past the cap.
    rack.run(2_000);
    assert_eq!(rack.completed_ops(), expected, "cap must be exact");
    let hist = rack.read_latency_histogram();
    assert_eq!(
        hist.stats().count(),
        expected,
        "every async read must land in the read-latency histogram"
    );
    // One hop each way at 70 cycles is the physical floor.
    assert!(hist.stats().min().unwrap_or(0) >= 140);
    assert!(hist.percentile(0.99) >= hist.percentile(0.50));
}
