//! Failure study: kill a link or a node of the torus mid-run and measure
//! the blast radius.
//!
//! The grid is `experiments::failure_sweep` — a 4x4x4 64-node rack running
//! capped `{uniform, zipf}` jobs under `{none, link-kill, node-kill}` ×
//! `{dor, fault-adaptive}`:
//!
//! * **link-kill** severs the link between the Zipf hot node and its `+x`
//!   neighbor. Health-blind dimension-order routing parks every flow that
//!   crossed it — those ops only finish through the ITT watchdog's
//!   timeout/retry/error path — while `fault-adaptive` detours over the
//!   surviving minimal paths and completes the job cleanly.
//! * **node-kill** erases the hot node outright. No routing policy can
//!   save ops addressed to the corpse; the measured claim is that the rack
//!   *finishes* — every such op completes with an error CQ status instead
//!   of hanging a core.
//!
//! The assertions below are the acceptance criteria CI enforces; the cell
//! table lands in `BENCH_failure.json` (schema `rackni-bench-failure/1`)
//! next to `BENCH_rack.json`.
//!
//! ```sh
//! cargo run --release --example failure_study                 # quick (CI)
//! RACKNI_SCALE=full cargo run --release --example failure_study
//! ```

use std::fmt::Write as _;

use rackni::experiments::{
    failure_points_render, failure_sweep, FailureParams, FailurePoint, FaultCase, Scale,
};
use rackni::ni_fabric::RoutingKind;

fn main() {
    let scale = Scale::from_env();
    let params = FailureParams::at(scale);
    println!(
        "failure_study: 4x4x4 rack, mid-run fault at cycle {}, ITT watchdog {} cycles x{} retries \
         [scale: {scale:?}]\n",
        params.kill_at, params.itt_timeout, params.itt_retries
    );

    let pts = failure_sweep(scale);
    println!("{}", failure_points_render(&pts));
    println!(
        "faults fire at cycle {}; 'ops' counts error completions too, so a",
        params.kill_at
    );
    println!("cell can complete its job with casualties — 'failed' is the blast radius.");

    let find = |scenario: &str, fault: FaultCase, routing: RoutingKind| -> &FailurePoint {
        pts.iter()
            .find(|p| p.scenario == scenario && p.fault == fault && p.routing == routing)
            .expect("sweep covers the full grid")
    };

    // Healthy cells are the control group: everything completes, nothing
    // fails, the watchdog never fires.
    for p in pts.iter().filter(|p| p.fault == FaultCase::None) {
        assert!(
            p.completed_all && p.failed_ops == 0 && p.itt_timeouts == 0,
            "healthy {}/{} cell degraded: {p:?}",
            p.scenario,
            p.routing.name()
        );
    }

    // Headline 1 (link kill): fault-adaptive routes around the dead link
    // and completes the capped Zipf job with zero casualties, while
    // dimension-order either never finishes inside the horizon or pays at
    // least 2x the completion time grinding through ITT timeouts.
    let ada = find("zipf", FaultCase::LinkKill, RoutingKind::FaultAdaptive);
    assert!(
        ada.completed_all && ada.failed_ops == 0,
        "fault-adaptive must complete the link-kill Zipf job cleanly: {ada:?}"
    );
    assert!(
        ada.escape_hops > 0 || ada.dead_link_stalls == 0,
        "the detour should show up as escape hops, not stalls: {ada:?}"
    );
    let dor = find("zipf", FaultCase::LinkKill, RoutingKind::DimensionOrder);
    assert!(
        !dor.completed_all || dor.completion_cycles >= 2 * ada.completion_cycles,
        "DOR must stall (or finish >=2x slower) on the dead link: dor {} vs ada {} cycles",
        dor.completion_cycles,
        ada.completion_cycles
    );
    println!(
        "\nlink-kill zipf: fault-adaptive completed {}/{} ops in {} cycles with {} failures \
         ({} escape hops); DOR {} in {}{} cycles with {} failures",
        ada.completed_ops,
        ada.expected_ops,
        ada.completion_cycles,
        ada.failed_ops,
        ada.escape_hops,
        if dor.completed_all {
            "completed"
        } else {
            "DID NOT complete"
        },
        if dor.completed_all { "" } else { ">" },
        dor.completion_cycles,
        dor.failed_ops,
    );

    // Headline 2 (node kill): no policy can reach a corpse, but the rack
    // must *finish* — every op addressed to it completes with an error CQ
    // status well inside the horizon instead of wedging its core.
    for routing in [RoutingKind::DimensionOrder, RoutingKind::FaultAdaptive] {
        for scenario in ["uniform", "zipf"] {
            let p = find(scenario, FaultCase::NodeKill, routing);
            assert!(
                p.completed_all,
                "{scenario}/{}: node kill hung the rack: {p:?}",
                routing.name()
            );
            assert!(
                p.failed_ops > 0,
                "{scenario}/{}: a dead hot node must cost error completions: {p:?}",
                routing.name()
            );
            assert!(
                p.completion_cycles < params.horizon,
                "{scenario}/{}: completion rode the horizon: {p:?}",
                routing.name()
            );
        }
    }
    // Blast-radius containment: fault-adaptive loses only the unavoidable
    // ops (those addressed to the corpse); health-blind DOR additionally
    // wedges flows that merely *relayed* through it, so its casualty count
    // must never be lower.
    let nk_ada = find("zipf", FaultCase::NodeKill, RoutingKind::FaultAdaptive);
    let nk_dor = find("zipf", FaultCase::NodeKill, RoutingKind::DimensionOrder);
    assert!(
        nk_ada.failed_ops <= nk_dor.failed_ops,
        "fault-adaptive must not widen the node-kill blast radius: ada {} vs dor {}",
        nk_ada.failed_ops,
        nk_dor.failed_ops
    );
    println!(
        "node-kill zipf: every op completed; blast radius {} failed ops (fault-adaptive) vs {} \
         (DOR), {} packets erased by the dead node",
        nk_ada.failed_ops, nk_dor.failed_ops, nk_ada.packets_dropped
    );

    // Machine-readable trajectory for CI artifacts.
    let mut rows = Vec::new();
    for p in &pts {
        rows.push(format!(
            r#"    {{"scenario": "{}", "fault": "{}", "routing": "{}", "torus": "{}x{}x{}", "kill_at": {}, "expected_ops": {}, "completed_ops": {}, "failed_ops": {}, "completed_all": {}, "completion_cycles": {}, "p50_ok_read": {}, "p99_ok_read": {}, "link_skew": {:.4}, "itt_timeouts": {}, "itt_retries": {}, "packets_dropped": {}, "dead_link_stalls": {}, "escape_hops": {}}}"#,
            p.scenario,
            p.fault.label(),
            p.routing.name(),
            p.dims.0,
            p.dims.1,
            p.dims.2,
            p.kill_at,
            p.expected_ops,
            p.completed_ops,
            p.failed_ops,
            p.completed_all,
            p.completion_cycles,
            p.p50_read_cycles,
            p.p99_read_cycles,
            p.link_skew,
            p.itt_timeouts,
            p.itt_retries,
            p.packets_dropped,
            p.dead_link_stalls,
            p.escape_hops,
        ));
    }
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, r#"  "schema": "rackni-bench-failure/1","#);
    let _ = writeln!(
        json,
        r#"  "scale": "{}","#,
        format!("{scale:?}").to_lowercase()
    );
    let _ = writeln!(json, r#"  "kill_at": {},"#, params.kill_at);
    let _ = writeln!(json, r#"  "itt_timeout": {},"#, params.itt_timeout);
    let _ = writeln!(json, r#"  "itt_retries": {},"#, params.itt_retries);
    let _ = writeln!(json, r#"  "points": ["#);
    let _ = writeln!(json, "{}", rows.join(",\n"));
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    let path = "BENCH_failure.json";
    std::fs::write(path, &json).expect("write BENCH_failure.json");
    println!("\nblast-radius table written to {path}");
}
