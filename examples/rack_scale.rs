//! True multi-node rack simulation: a 2x2x2 torus of eight fully simulated
//! 64-core chips, real cross-node traffic hop-by-hop over the fabric, and
//! the per-directed-link bandwidth report the single-node emulator cannot
//! produce.
//!
//! ```sh
//! cargo run --release --example rack_scale
//! ```

use rackni::experiments::{link_byte_skew, Scale};
use rackni::ni_engine::Frequency;
use rackni::ni_fabric::Torus3D;
use rackni::ni_soc::{
    ChipConfig, LinkReportFormat, Rack, RackSimConfig, TrafficPattern, Workload, ZipfHotspot,
};
use rackni::report::{f1, Table};

fn main() {
    let torus = Torus3D::new(2, 2, 2);
    // RACKNI_SCALE=quick keeps CI smoke runs short; full runs longer.
    let cycles = Scale::from_env().rack_cycles().max(20_000);
    println!(
        "rackni rack_scale: {} nodes ({}x{}x{} torus), every node a full chip, {} cycles\n",
        torus.nodes(),
        torus.dims().0,
        torus.dims().1,
        torus.dims().2,
        cycles
    );

    let mut summary = Table::new(&[
        "traffic",
        "ops",
        "agg NI (GBps)",
        "fabric hops",
        "peak link (GBps)",
    ]);
    let mut detail: Option<(TrafficPattern, Rack)> = None;
    for traffic in [
        TrafficPattern::Neighbor,
        TrafficPattern::Uniform,
        TrafficPattern::Opposite,
    ] {
        let cfg = RackSimConfig {
            torus,
            chip: ChipConfig {
                active_cores: 4,
                ..ChipConfig::default()
            },
            traffic,
            ..RackSimConfig::default()
        };
        let mut rack = Rack::new(
            cfg,
            Workload::AsyncRead {
                size: 512,
                poll_every: 4,
            },
        );
        rack.run(cycles);
        let agg = Frequency::GHZ2
            .gbps_from_bytes_per_cycle(rack.app_payload_bytes() as f64 / cycles as f64);
        summary.row_owned(vec![
            format!("{traffic:?}"),
            rack.completed_ops().to_string(),
            f1(agg),
            rack.hops_traversed().to_string(),
            f1(rack.peak_link_gbps()),
        ]);
        if traffic == TrafficPattern::Uniform {
            detail = Some((traffic, rack));
        }
    }
    println!("{}", summary.render());

    let (traffic, rack) = detail.expect("uniform pattern ran");
    println!("per-node completion, {traffic:?} traffic:");
    let mut nodes = Table::new(&["node", "coords", "ops", "NI bytes"]);
    for chip in rack.chips() {
        let id = u32::from(chip.node_id());
        let c = torus.coords(id);
        nodes.row_owned(vec![
            id.to_string(),
            format!("({},{},{})", c.0, c.1, c.2),
            chip.completed_ops().to_string(),
            chip.app_payload_bytes().to_string(),
        ]);
    }
    println!("{}", nodes.render());

    println!("all 48 directed links, peak bandwidth over any 10K-cycle window:");
    let mut links = rack.link_report();
    links.sort_by(|a, b| b.peak_gbps.total_cmp(&a.peak_gbps));
    let mut lt = Table::new(&["link", "packets", "bytes", "busy", "util", "peak GBps"]);
    for l in &links {
        lt.row_owned(vec![
            format!("n{} {}", l.node, l.dir),
            l.packets.to_string(),
            l.bytes.to_string(),
            l.busy_cycles.to_string(),
            format!("{:.1}%", l.busy_cycles as f64 / cycles as f64 * 100.0),
            f1(l.peak_gbps),
        ]);
    }
    println!("{}", lt.render());

    let moved: u64 = links.iter().map(|l| l.packets).sum();
    assert_eq!(
        moved,
        rack.hops_traversed(),
        "link counters account every hop"
    );
    println!(
        "fabric totals: {} packets delivered, {} link traversals, busiest link {:.1} GBps",
        {
            let s = rack.fabric_stats();
            s.incoming_generated.get() + s.responded.get()
        },
        rack.hops_traversed(),
        rack.peak_link_gbps()
    );

    // Machine-readable per-link dump for offline congestion analysis.
    let csv_path = std::path::Path::new("target").join("rack_scale_links.csv");
    let mut csv = std::fs::File::create(&csv_path).expect("create link report");
    rack.write_link_report(&mut csv, LinkReportFormat::Csv)
        .expect("write link report");
    println!("per-link report written to {}\n", csv_path.display());

    // Hotspot study: the same rack under Zipf-skewed destinations — the
    // first-class scenario the uniform TrafficPattern enum could not
    // express. Most requests pile onto one hot node, so its incoming links
    // run far above the mean while uniform traffic stays balanced.
    let hot_cfg = RackSimConfig {
        torus,
        chip: ChipConfig {
            active_cores: 4,
            ..ChipConfig::default()
        },
        ..RackSimConfig::default()
    };
    let mut hot = Rack::with_scenario(hot_cfg, &ZipfHotspot::default());
    hot.run(cycles);
    let uniform_skew = link_byte_skew(&rack);
    let hot_skew = link_byte_skew(&hot);
    println!(
        "link load skew (busiest link bytes / mean loaded link): uniform {uniform_skew:.2}x, \
         zipf-hotspot {hot_skew:.2}x"
    );
    let rrpp = hot.rrpp_mean_latencies();
    println!(
        "zipf-hotspot RRPP mean service latency per node: {:?} cycles",
        rrpp.iter().map(|l| l.round()).collect::<Vec<_>>()
    );
    assert!(
        hot_skew > uniform_skew,
        "zipf hotspot must load links more unevenly than uniform traffic"
    );
    let hot_csv = std::path::Path::new("target").join("rack_scale_links_hotspot.csv");
    let mut f = std::fs::File::create(&hot_csv).expect("create hotspot report");
    hot.write_link_report(&mut f, LinkReportFormat::Csv)
        .expect("write hotspot report");
    println!("hotspot per-link report written to {}", hot_csv.display());
}
