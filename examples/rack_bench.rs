//! Parallel-rack scaling benchmark: the paper's rack sizes (2x2x2 up to the
//! 512-node 8x8x8 torus of §1, plus a 4096-node 16x16x16 stretch point)
//! driven through the two-phase parallel `Rack::run` loop, with simulator
//! throughput (simulated cycles per wall-clock second) measured serially
//! and in parallel at every size.
//!
//! Three jobs in one binary:
//!
//! 1. **Throughput trajectory** — writes `BENCH_rack.json` (schema
//!    `rackni-bench-rack/2`) so CI can archive cycles/sec per rack size and
//!    scenario, and future PRs can track simulator-performance regressions.
//! 2. **Speedup check** — on multi-core hosts the same seeded run is timed
//!    once pinned to one worker and once across all workers; the ratio is
//!    the parallel-tick speedup (reported per size).
//! 3. **Determinism guard** — the serial and parallel runs of each point
//!    must produce identical fabric counters, completed ops, and hop
//!    counts; any divergence aborts the benchmark.
//!
//! Two traffic shapes run per sweep:
//!
//! * `uniform-async` — every active core issues back-to-back 512B async
//!   reads (the saturation regime; see `experiments::build_rack_point`).
//! * `idle-heavy` — a stencil-like nearest-neighbour exchange: 2-op bursts
//!   against 10k-cycle declared think windows with frontend poll backoff
//!   (see `experiments::build_idle_rack_point`): the regime the
//!   event-driven chip tick is built for, and the only shape the 4096-node
//!   point runs (a saturated 4096-node rack is a full-scale job, not a CI
//!   smoke).
//!
//! ```sh
//! cargo run --release --example rack_bench                 # quick (CI)
//! RACKNI_SCALE=full cargo run --release --example rack_bench
//! RACKNI_THREADS=8 cargo run --release --example rack_bench
//! ```
//!
//! Chips use the paper's NIedge placement (see `experiments::rack_scale`):
//! the design the paper scales to the full rack, and the config that keeps
//! a fully simulated 512-node rack inside CI budgets.

use std::fmt::Write as _;
use std::time::Instant;

use rackni::experiments::{build_idle_rack_point, build_rack_point, Scale};
use rackni::ni_soc::{TickMode, TrafficPattern};
use rackni::parallel::default_threads;
use rackni::report::{f1, Table};

/// Traffic shape of one benchmark point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Shape {
    /// Saturating back-to-back async reads.
    UniformAsync,
    /// Bursty duty-cycled reads with declared idle windows.
    IdleHeavy,
}

impl Shape {
    fn name(self) -> &'static str {
        match self {
            Shape::UniformAsync => "uniform-async",
            Shape::IdleHeavy => "idle-heavy",
        }
    }
}

/// Observable outcome of one run — serial and parallel runs of the same
/// seeded config must match exactly.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    sent: u64,
    incoming: u64,
    responded: u64,
    completed_ops: u64,
    hops: u64,
}

struct RunResult {
    build_ms: f64,
    wall_ms: f64,
    cps: f64,
    fp: Fingerprint,
}

fn run_point(shape: Shape, dims: (u16, u16, u16), cycles: u64, threads: usize) -> RunResult {
    // One source of truth per shape: the same builders the
    // `experiments::rack_scale` sweep and the simperf gate use, so the
    // BENCH_rack.json trajectory and the sweep tables can never drift
    // apart. Both shapes run the default event-driven tick — the
    // trajectory tracks the simulator as shipped (simperf covers the
    // event-vs-poll comparison).
    let t0 = Instant::now();
    let mut rack = match shape {
        Shape::UniformAsync => build_rack_point(dims, TrafficPattern::Uniform, threads),
        Shape::IdleHeavy => build_idle_rack_point(dims, threads, TickMode::Event),
    };
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    rack.run(cycles);
    let wall = t1.elapsed().as_secs_f64();
    let fs = rack.fabric_stats();
    RunResult {
        build_ms,
        wall_ms: wall * 1e3,
        cps: cycles as f64 / wall.max(1e-9),
        fp: Fingerprint {
            sent: fs.sent.get(),
            incoming: fs.incoming_generated.get(),
            responded: fs.responded.get(),
            completed_ops: rack.completed_ops(),
            hops: rack.hops_traversed(),
        },
    }
}

fn main() {
    let scale = Scale::from_env();
    let host_threads = default_threads();
    // (shape, dims, horizon): quick keeps CI smoke runs inside seconds per
    // point; full pins the paper's 512-node rack at a >=50k-cycle horizon
    // (enough for tens of thousands of completed round trips at ~1.1k
    // cycles each). The 16x16x16 4096-node stretch point runs idle-heavy
    // only, at a short horizon — its job is to prove the rack scales 8x
    // past the paper and to put a cycles/sec number on it.
    let points: Vec<(Shape, (u16, u16, u16), u64)> = match scale {
        Scale::Quick => vec![
            (Shape::UniformAsync, (2, 2, 2), 6_000),
            (Shape::UniformAsync, (3, 3, 3), 2_500),
            (Shape::UniformAsync, (4, 4, 4), 1_200),
            (Shape::UniformAsync, (8, 8, 8), 400),
            (Shape::IdleHeavy, (4, 4, 4), 11_500),
            // Pre-discovery window only (the idle-heavy shape's frontends
            // take ~5.4k cycles to round-robin onto the one active QP):
            // this point's job is proving the 4096-node build and pricing
            // the dormant path, not moving traffic — the full sweep does
            // that with a post-discovery horizon.
            (Shape::IdleHeavy, (16, 16, 16), 600),
        ],
        Scale::Full => vec![
            (Shape::UniformAsync, (2, 2, 2), 60_000),
            (Shape::UniformAsync, (3, 3, 3), 60_000),
            (Shape::UniformAsync, (4, 4, 4), 60_000),
            (Shape::UniformAsync, (8, 8, 8), 50_000),
            (Shape::IdleHeavy, (8, 8, 8), 50_000),
            // Past the ~5.4k-cycle WQ-discovery latency, so the burst
            // crosses the 4096-node fabric within the horizon.
            (Shape::IdleHeavy, (16, 16, 16), 8_000),
        ],
    };
    println!(
        "rackni rack_bench: two-phase parallel rack ticking, scale {scale:?}, \
         host threads {host_threads}\n"
    );

    let mut table = Table::new(&[
        "scenario",
        "torus",
        "nodes",
        "cycles",
        "build (ms)",
        "serial cyc/s",
        "parallel cyc/s",
        "threads",
        "speedup",
        "ops",
        "hops",
    ]);
    let mut rows = Vec::new();
    for &(shape, dims, cycles) in &points {
        let nodes = u32::from(dims.0) * u32::from(dims.1) * u32::from(dims.2);
        // Rack::run clamps its pool to the chip count; report the workers
        // the parallel run actually gets, not the raw host count.
        let eff_threads = host_threads.min(nodes as usize).max(1);
        let serial = run_point(shape, dims, cycles, 1);
        // On a single-core host the parallel run would measure the same
        // configuration twice; reuse the serial numbers.
        let parallel = if host_threads > 1 {
            let p = run_point(shape, dims, cycles, 0);
            assert_eq!(
                p.fp,
                serial.fp,
                "{dims:?}/{}: parallel run diverged from the serial reference",
                shape.name()
            );
            Some(p)
        } else {
            None
        };
        let (pcps, pwall) = parallel
            .as_ref()
            .map_or((serial.cps, serial.wall_ms), |p| (p.cps, p.wall_ms));
        let speedup = pcps / serial.cps;
        table.row_owned(vec![
            shape.name().to_string(),
            format!("{}x{}x{}", dims.0, dims.1, dims.2),
            nodes.to_string(),
            cycles.to_string(),
            f1(serial.build_ms),
            f1(serial.cps),
            f1(pcps),
            eff_threads.to_string(),
            format!("{speedup:.2}x"),
            serial.fp.completed_ops.to_string(),
            serial.fp.hops.to_string(),
        ]);
        rows.push(format!(
            r#"    {{"scenario": "{scen}", "torus": "{x}x{y}x{z}", "nodes": {nodes}, "cycles": {cycles}, "serial_cps": {scps:.1}, "parallel_cps": {pcps:.1}, "threads": {eff_threads}, "speedup": {speedup:.4}, "wall_ms_serial": {swall:.1}, "wall_ms_parallel": {pwall:.1}, "build_ms": {bms:.1}, "completed_ops": {ops}, "hops": {hops}}}"#,
            scen = shape.name(),
            x = dims.0,
            y = dims.1,
            z = dims.2,
            scps = serial.cps,
            swall = serial.wall_ms,
            bms = serial.build_ms,
            ops = serial.fp.completed_ops,
            hops = serial.fp.hops,
        ));
    }
    println!("{}", table.render());
    if host_threads > 1 {
        println!(
            "serial and parallel runs produced identical fabric counters, ops, \
             and hop counts at every size (determinism guard passed)"
        );
    } else {
        println!(
            "single-core host: parallel columns mirror the serial run \
             (speedup needs >1 host thread; set RACKNI_THREADS on a bigger box)"
        );
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, r#"  "schema": "rackni-bench-rack/2","#);
    let _ = writeln!(
        json,
        r#"  "scale": "{}","#,
        format!("{scale:?}").to_lowercase()
    );
    let _ = writeln!(json, r#"  "host_threads": {host_threads},"#);
    let _ = writeln!(json, r#"  "points": ["#);
    let _ = writeln!(json, "{}", rows.join(",\n"));
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    let path = "BENCH_rack.json";
    std::fs::write(path, &json).expect("write BENCH_rack.json");
    println!("\nthroughput trajectory written to {path}");
}
