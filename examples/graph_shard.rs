//! Graph-processing scenario (§1/§2.1 of the paper), driven by the
//! first-class [`GraphShard`] `Scenario`.
//!
//! Graph analytics over a rack-partitioned graph is the paper's motivating
//! bandwidth-bound workload: poor locality means a large fraction of edge
//! lists live on other nodes, and that fraction grows with rack size. Each
//! out-of-shard vertex expansion is a bulk one-sided read of the neighbor
//! list (2KB–8KB here, Lim et al. [32]). The same scenario object drives
//! the single-chip design comparison and an eight-node rack.
//!
//! ```sh
//! cargo run --release --example graph_shard
//! ```

use rackni::experiments::{run_scenario_point, Scale};
use rackni::ni_rmc::NiPlacement;
use rackni::ni_soc::{run_chip_scenario, ChipConfig, GraphShard};
use rackni::parallel::par_map;
use rackni::report::{f1, Table};

/// Bytes per edge in the fetched adjacency lists (destination id + weight).
const EDGE_BYTES: f64 = 8.0;

fn main() {
    println!("graph_shard: bulk 2KB..8KB edge-list fetches from remote shards\n");
    let scale = Scale::from_env();
    let chip_cycles = 4 * scale.rack_cycles();
    let designs = [NiPlacement::Edge, NiPlacement::PerTile, NiPlacement::Split];

    let runs = par_map(designs.to_vec(), move |p| {
        let cfg = ChipConfig {
            placement: p,
            ..ChipConfig::default()
        };
        run_chip_scenario(cfg, &GraphShard::default(), chip_cycles)
    });

    let mut t = Table::new(&["design", "GBps", "edges/s"]);
    let mut gbps = [0.0f64; 3];
    for (di, (p, r)) in designs.iter().zip(&runs).enumerate() {
        gbps[di] = r.app_gbps;
        // Traversed edges: fetched bytes (one direction) / edge size.
        let edges = r.app_gbps / 2.0 * 1e9 / EDGE_BYTES;
        t.row_owned(vec![
            p.name().to_string(),
            f1(r.app_gbps),
            format!("{:.1}B", edges / 1e9),
        ]);
    }
    println!(
        "aggregate fetch bandwidth (64 cores async):\n{}",
        t.render()
    );
    println!(
        "NI_per-tile reaches {:.0}% of NI_edge (paper: ~25% at 8KB): unrolling at\n\
         the source tile floods the NOC, so bulk transfers need an edge engine.\n",
        100.0 * gbps[1] / gbps[0].max(1e-9)
    );

    // Rack: the same scenario on the sweep's canonical 8-node rack, shards
    // scattered across the torus.
    let pt = run_scenario_point(&GraphShard::default(), scale.rack_cycles());
    println!(
        "8-node rack ({} scenario): {} fetches, {} GBps aggregate NI, {} fabric hops",
        pt.name,
        pt.completed_ops,
        f1(pt.agg_ni_gbps),
        pt.hops
    );
}
