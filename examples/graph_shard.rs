//! Graph-processing scenario (§1/§2.1 of the paper).
//!
//! Graph analytics over a rack-partitioned graph is the paper's motivating
//! bandwidth-bound workload: poor locality means a large fraction of edge
//! lists live on other nodes, and that fraction grows with rack size. Each
//! out-of-shard vertex expansion is a bulk one-sided read of the neighbor
//! list (KBs, Lim et al. [32]).
//!
//! This example measures edge-traversal throughput for bulk fetches of
//! 2KB/4KB/8KB edge lists on each NI design, and shows the NIper-tile
//! collapse the paper predicts for large unrolls.
//!
//! ```sh
//! cargo run --release --example graph_shard
//! ```

use rackni::ni_rmc::NiPlacement;
use rackni::ni_soc::{run_bandwidth, ChipConfig};
use rackni::parallel::par_map;
use rackni::report::{f1, Table};

/// Bytes per edge in the fetched adjacency lists (destination id + weight).
const EDGE_BYTES: f64 = 8.0;

fn main() {
    println!("graph_shard: bulk edge-list fetches from remote shards\n");
    let designs = [NiPlacement::Edge, NiPlacement::PerTile, NiPlacement::Split];
    let sizes = [2048u64, 4096, 8192];

    let grid: Vec<(NiPlacement, u64)> = designs
        .iter()
        .flat_map(|&p| sizes.iter().map(move |&s| (p, s)))
        .collect();
    let runs = par_map(grid, |(p, s)| {
        let cfg = ChipConfig {
            placement: p,
            ..ChipConfig::default()
        };
        run_bandwidth(cfg, s, 50_000, 3)
    });

    let mut t = Table::new(&["design", "2KB GBps", "4KB GBps", "8KB GBps", "8KB edges/s"]);
    let mut at8k = [0.0f64; 3];
    for (di, &p) in designs.iter().enumerate() {
        let mut cells = vec![p.name().to_string()];
        for (si, _) in sizes.iter().enumerate() {
            let r = &runs[di * sizes.len() + si];
            cells.push(f1(r.app_gbps));
            if si == sizes.len() - 1 {
                at8k[di] = r.app_gbps;
                // Traversed edges: fetched bytes (one direction) / edge size.
                let edges = r.app_gbps / 2.0 * 1e9 / EDGE_BYTES;
                cells.push(format!("{:.1}B", edges / 1e9));
            }
        }
        t.row_owned(cells);
    }
    println!(
        "aggregate fetch bandwidth (64 cores async):\n{}",
        t.render()
    );
    println!(
        "NI_per-tile reaches {:.0}% of NI_edge at 8KB (paper: ~25%): unrolling at\n\
         the source tile floods the NOC, so bulk transfers need an edge engine.",
        100.0 * at8k[1] / at8k[0].max(1e-9)
    );
}
