//! Distributed key-value store scenario (§2.1 of the paper), driven by the
//! first-class [`KvStore`] `Scenario`.
//!
//! Most key-value stores operate on objects between 16 and 512 bytes
//! (Atikoglu et al. [5]; Facebook's Memcached pools average ~500B). A GET
//! against a remote shard is one one-sided remote read of the value, a PUT
//! one one-sided write. The same scenario object drives both evaluation
//! paths:
//!
//! * single chip behind the paper's rack emulator — per-GET latency and
//!   aggregate GET/PUT throughput per NI design, over the full object mix;
//! * an eight-node 2x2x2 rack of fully simulated chips — rack-wide store
//!   throughput with real cross-node traffic.
//!
//! ```sh
//! cargo run --release --example kv_store
//! ```

use rackni::experiments::{run_scenario_point, Scale};
use rackni::ni_rmc::NiPlacement;
use rackni::ni_soc::{run_chip_scenario, ChipConfig, KvStore};
use rackni::parallel::par_map;
use rackni::report::{f1, Table};

fn cfg(p: NiPlacement) -> ChipConfig {
    ChipConfig {
        placement: p,
        ..ChipConfig::default()
    }
}

fn main() {
    println!("kv_store: GET/PUT mix over one-sided ops, objects 64B..512B (95% GET)\n");
    let scale = Scale::from_env();
    let chip_cycles = 4 * scale.rack_cycles();
    let designs = [NiPlacement::Edge, NiPlacement::PerTile, NiPlacement::Split];

    // Latency: one core issuing synchronous GET/PUTs over the object mix.
    let lat_runs = par_map(designs.to_vec(), move |p| {
        let scenario = KvStore::default().synchronous();
        let mut c = cfg(p);
        c.active_cores = 1;
        run_chip_scenario(c, &scenario, chip_cycles)
    });
    let mut t = Table::new(&["design", "ops", "mix mean (ns)", "p99 (ns)"]);
    for (p, r) in designs.iter().zip(&lat_runs) {
        t.row_owned(vec![
            p.name().to_string(),
            r.ops.to_string(),
            f1(r.mean_sync_ns()),
            f1(r.p99_sync_cycles as f64 * 0.5),
        ]);
    }
    println!(
        "unloaded request latency over the object mix:\n{}",
        t.render()
    );

    // Throughput: all 64 cores streaming the async GET/PUT mix.
    let thr_runs = par_map(designs.to_vec(), move |p| {
        run_chip_scenario(cfg(p), &KvStore::default(), chip_cycles)
    });
    let mut t = Table::new(&["design", "GBps", "requests/s"]);
    for (p, r) in designs.iter().zip(&thr_runs) {
        t.row_owned(vec![
            p.name().into(),
            f1(r.app_gbps),
            format!("{:.1}M", r.ops_per_sec() / 1e6),
        ]);
    }
    println!("loaded throughput (64 cores async):\n{}", t.render());

    // Rack: the same scenario object on the sweep's canonical 8-node rack.
    let pt = run_scenario_point(&KvStore::default(), scale.rack_cycles());
    println!(
        "8-node rack ({} scenario): {} requests served, {} GBps aggregate NI, peak link {} GBps",
        pt.name,
        pt.completed_ops,
        f1(pt.agg_ni_gbps),
        f1(pt.peak_link_gbps)
    );
    println!("\nNI_split keeps per-tile GET latency while matching edge throughput —");
    println!("for small objects, QP placement (not link speed) decides the tail.");
}
