//! Distributed key-value store scenario (§2.1 of the paper).
//!
//! Most key-value stores operate on objects between 16 and 512 bytes
//! (Atikoglu et al. [5]; Facebook's Memcached pools average ~500B). A GET
//! against a remote shard is one one-sided remote read of the value. This
//! example measures what each NI design means for such a store:
//!
//! * per-GET latency across the paper's object-size mix, and
//! * aggregate GET throughput when all 64 cores serve requests.
//!
//! ```sh
//! cargo run --release --example kv_store
//! ```

use rackni::ni_rmc::NiPlacement;
use rackni::ni_soc::{run_bandwidth, run_sync_latency, ChipConfig};
use rackni::parallel::par_map;
use rackni::report::{f1, Table};

/// A memcached-like object-size mix: (value bytes, weight).
const MIX: [(u64, f64); 4] = [(64, 0.35), (128, 0.30), (256, 0.20), (512, 0.15)];

fn cfg(p: NiPlacement) -> ChipConfig {
    ChipConfig {
        placement: p,
        ..ChipConfig::default()
    }
}

fn main() {
    println!("kv_store: remote GETs over one-sided reads, object mix 64B..512B\n");
    let designs = [NiPlacement::Edge, NiPlacement::PerTile, NiPlacement::Split];

    // Latency: unloaded GET per object size and the mix-weighted mean.
    let grid: Vec<(NiPlacement, u64)> = designs
        .iter()
        .flat_map(|&p| MIX.iter().map(move |&(s, _)| (p, s)))
        .collect();
    let runs = par_map(grid.clone(), |(p, s)| run_sync_latency(cfg(p), s, 10));

    let mut t = Table::new(&[
        "design",
        "64B",
        "128B",
        "256B",
        "512B",
        "mix mean (ns)",
        "p99 @512B (ns)",
    ]);
    for (di, &p) in designs.iter().enumerate() {
        let mut cells = vec![p.name().to_string()];
        let mut weighted = 0.0;
        let mut p99 = 0u64;
        for (si, &(_, w)) in MIX.iter().enumerate() {
            let r = &runs[di * MIX.len() + si];
            cells.push(f1(r.mean_ns));
            weighted += w * r.mean_ns;
            p99 = r.p99_cycles;
        }
        cells.push(f1(weighted));
        cells.push(f1(p99 as f64 * 0.5));
        t.row_owned(cells);
    }
    println!("unloaded GET latency (ns):\n{}", t.render());

    // Throughput: all cores issuing 128B GETs asynchronously.
    let thr = par_map(designs.to_vec(), |p| {
        let r = run_bandwidth(cfg(p), 128, 50_000, 3);
        (p, r)
    });
    let mut t = Table::new(&["design", "GBps", "GETs/s (128B values)"]);
    for (p, r) in thr {
        // Application bandwidth counts both directions; a served GET moves
        // the value once in each direction of the symmetric rack.
        let gets_per_s = r.app_gbps * 1e9 / (2.0 * 128.0);
        t.row_owned(vec![
            p.name().into(),
            f1(r.app_gbps),
            format!("{:.1}M", gets_per_s / 1e6),
        ]);
    }
    println!("loaded GET throughput (64 cores async):\n{}", t.render());
    println!("NI_split keeps per-tile GET latency while matching edge throughput —");
    println!("for small objects, QP placement (not link speed) decides the tail.");
}
