//! On-chip routing study (§4.3/§6.2): why soNUMA chips need the NI-aware
//! CDR variant.
//!
//! Remote-machine traffic enters and leaves through one chip edge while
//! most of it terminates at the memory controllers on the opposite edge.
//! Dimension-order routing funnels that traffic into the peripheral
//! columns; the paper's fix routes directory-sourced traffic YX so it never
//! turns at the edges.
//!
//! ```sh
//! cargo run --release --example routing_study
//! ```

use rackni::experiments::{routing_ablation, Scale};
use rackni::ni_noc::RoutingPolicy;
use rackni::report::{f1, Table};

fn main() {
    let scale = Scale::from_env();
    println!("routing_study: NI_split aggregate bandwidth by routing policy [scale: {scale:?}]\n");

    let rows = routing_ablation(scale, 2048);
    let cdr_ni = rows
        .iter()
        .find(|(p, _)| *p == RoutingPolicy::CdrNi)
        .map(|&(_, g)| g)
        .expect("sweep includes CdrNi");

    let mut t = Table::new(&["policy", "app GBps", "vs CDR+NI"]);
    for (p, g) in &rows {
        t.row_owned(vec![
            format!("{p:?}"),
            f1(*g),
            format!("{:.0}%", 100.0 * g / cdr_ni),
        ]);
    }
    println!("{}", t.render());
    println!("The paper reports sub-half peak (~100 vs 214 GBps) without CDR; the");
    println!("NI-aware class keeps directory traffic off the NI and MC edge columns.");
}
