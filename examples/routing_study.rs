//! Routing study, on-chip and rack-scale.
//!
//! Two layers of the design space share the name "routing":
//!
//! 1. **On-chip (§4.3/§6.2)**: why soNUMA chips need the NI-aware CDR
//!    variant. Remote-machine traffic enters and leaves through one chip
//!    edge while most of it terminates at the memory controllers on the
//!    opposite edge; dimension-order routing funnels that traffic into the
//!    peripheral columns, and the paper's fix routes directory-sourced
//!    traffic YX so it never turns at the edges.
//! 2. **Rack-scale (this repo's extension)**: which *torus* routing policy
//!    carries chip-to-chip traffic. `experiments::routing_sweep` compares
//!    deterministic dimension-order routing against congestion-aware
//!    minimal-adaptive and seeded random-minimal policies
//!    (`ni_fabric::RoutingPolicy`) on a 64-node 4x4x4 rack across uniform,
//!    antipodal, and Zipf-hotspot traffic.
//!
//! ```sh
//! cargo run --release --example routing_study
//! ```

use rackni::experiments::{routing_ablation, routing_points_render, routing_sweep, Scale};
use rackni::ni_fabric::RoutingKind;
use rackni::ni_noc::RoutingPolicy;
use rackni::report::{f1, Table};

fn main() {
    let scale = Scale::from_env();
    println!("routing_study: NI_split aggregate bandwidth by on-chip routing policy [scale: {scale:?}]\n");

    let rows = routing_ablation(scale, 2048);
    let cdr_ni = rows
        .iter()
        .find(|(p, _)| *p == RoutingPolicy::CdrNi)
        .map(|&(_, g)| g)
        .expect("sweep includes CdrNi");

    let mut t = Table::new(&["policy", "app GBps", "vs CDR+NI"]);
    for (p, g) in &rows {
        t.row_owned(vec![
            format!("{p:?}"),
            f1(*g),
            format!("{:.0}%", 100.0 * g / cdr_ni),
        ]);
    }
    println!("{}", t.render());
    println!("The paper reports sub-half peak (~100 vs 214 GBps) without CDR; the");
    println!("NI-aware class keeps directory traffic off the NI and MC edge columns.\n");

    println!("torus routing-policy sweep: 4x4x4 rack, capped jobs run to completion\n");
    let pts = routing_sweep(scale);
    println!("{}", routing_points_render(&pts));
    println!("DOR is deterministic dimension order (the pre-policy status quo);");
    println!("adaptive picks the least-backlogged productive link per hop (DOR on");
    println!("ties); random is the seeded oblivious minimal baseline.");

    // The sweep's headline claim, enforced so CI catches a regression: on
    // Zipf-hotspot traffic, minimal-adaptive routing must spread the hot
    // node's load and beat dimension order on link byte skew.
    let skew = |routing: RoutingKind| {
        pts.iter()
            .find(|p| p.scenario == "zipf" && p.routing == routing)
            .expect("sweep covers the zipf rows")
            .link_skew
    };
    let (dor, ada) = (
        skew(RoutingKind::DimensionOrder),
        skew(RoutingKind::MinimalAdaptive),
    );
    assert!(
        ada < dor,
        "minimal-adaptive skew {ada:.2}x must undercut DOR {dor:.2}x on the Zipf hotspot"
    );
    println!(
        "\nzipf hotspot: adaptive routing cuts link byte skew {dor:.2}x -> {ada:.2}x ({:+.1}%)",
        (ada / dor - 1.0) * 100.0
    );
}
