//! Quickstart: simulate one synchronous remote read on each NI design and
//! print where the cycles go.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rackni::ni_rmc::NiPlacement;
use rackni::ni_soc::{run_sync_latency, stage_breakdown, ChipConfig};
use rackni::report::{f1, Table};

fn main() {
    println!("rackni quickstart: a 64B remote read on a 64-core SoC, 1 network hop\n");

    // 1. One-liner: measure the end-to-end latency of the paper's NIsplit.
    let cfg = ChipConfig::default(); // 8x8 mesh, NIsplit, CDR+NI routing
    let r = run_sync_latency(cfg, 64, 10);
    println!(
        "NI_split: {:.0} cycles ({:.0} ns) end-to-end over {} reads\n",
        r.mean_cycles, r.mean_ns, r.ops
    );

    // 2. Compare all three designs plus the idealized NUMA baseline.
    let mut t = Table::new(&["design", "cycles", "ns", "vs NUMA"]);
    let numa = run_sync_latency(
        ChipConfig {
            placement: NiPlacement::Numa,
            ..ChipConfig::default()
        },
        64,
        10,
    );
    for p in [
        NiPlacement::Edge,
        NiPlacement::PerTile,
        NiPlacement::Split,
        NiPlacement::Numa,
    ] {
        let r = run_sync_latency(
            ChipConfig {
                placement: p,
                ..ChipConfig::default()
            },
            64,
            10,
        );
        let oh = if p == NiPlacement::Numa {
            "-".to_string()
        } else {
            format!("+{:.1}%", (r.mean_cycles / numa.mean_cycles - 1.0) * 100.0)
        };
        t.row_owned(vec![p.name().into(), f1(r.mean_cycles), f1(r.mean_ns), oh]);
    }
    println!("{}", t.render());

    // 3. Tomography: where NIsplit spends its cycles (Table 3 of the paper).
    let b = stage_breakdown(ChipConfig::default(), 10);
    let mut t = Table::new(&["stage", "cycles"]);
    t.row_owned(vec!["WQ write (sw + coherence)".into(), f1(b.wq_write)]);
    t.row_owned(vec!["WQ poll + RGP frontend".into(), f1(b.wq_read_and_rgp)]);
    t.row_owned(vec![
        "frontend -> backend -> router".into(),
        f1(b.fe_to_net),
    ]);
    t.row_owned(vec!["network + remote RRPP".into(), f1(b.net_round_trip)]);
    t.row_owned(vec!["RCP + CQ write".into(), f1(b.rcp_and_cq_write)]);
    t.row_owned(vec!["CQ read (core)".into(), f1(b.cq_read)]);
    t.row_owned(vec!["total".into(), f1(b.total)]);
    println!("{}", t.render());
    println!(
        "The QP machinery costs ~{:.0} cycles over the NUMA floor —",
        b.total - numa.mean_cycles
    );
    println!("the paper's point: with per-tile frontends it is small enough that a");
    println!("hardware load/store interface to remote memory is not worth core changes.");
}
