//! Availability study: how much of a rack's work survives node failures
//! as a function of replication degree and write quorum.
//!
//! The grid is `experiments::availability_sweep` — a 4x4x4 64-node rack
//! running capped read-only and write-only jobs under
//! `{k=1, k=2/w=1, k=3/w=2}` × `{none, node-kill, storm}`, fault-adaptive
//! routing, ITT watchdog armed, WQ replay budget `k - 1`:
//!
//! * **k = 1** is the blast-radius baseline: a node kill error-completes
//!   every op addressed to the corpse.
//! * **k >= 2, reads** — the headline claim: surviving nodes lose *zero*
//!   reads. Every timed-out read replays from its WQ descriptor toward an
//!   alternate replica and completes (degraded, measurably slower, but
//!   complete). A dead node's own in-flight client work is excluded — a
//!   corpse's issue queue is not user traffic.
//! * **k >= 2, writes** — writes fan out to all `k` replicas and complete
//!   once `w` acknowledge, so a dead replica costs a degraded flag, not an
//!   error.
//!
//! The assertions below are the acceptance criteria CI enforces (set
//! `RACKNI_AVAIL_GATE=off` to report without failing); the cell table
//! lands in `BENCH_availability.json` (schema `rackni-bench-availability/1`)
//! next to `BENCH_failure.json`.
//!
//! ```sh
//! cargo run --release --example availability_study            # quick (CI)
//! RACKNI_SCALE=full cargo run --release --example availability_study
//! ```

use std::fmt::Write as _;

use rackni::experiments::{
    availability_points_render, availability_sweep, AvailFault, AvailabilityPoint, FailureParams,
    Scale, AVAIL_KW,
};

fn main() {
    let scale = Scale::from_env();
    let params = FailureParams::at(scale);
    let gate = !matches!(
        std::env::var("RACKNI_AVAIL_GATE").as_deref(),
        Ok("off") | Ok("0")
    );
    println!(
        "availability_study: 4x4x4 rack, first fault at cycle {}, ITT watchdog {} cycles x{} \
         retries, replay budget k-1 [scale: {scale:?}, gate: {}]\n",
        params.kill_at,
        params.itt_timeout,
        params.itt_retries,
        if gate { "on" } else { "off" }
    );

    let pts = availability_sweep(scale);
    println!("{}", availability_points_render(&pts));
    println!("'lost reads' counts error-completed reads on *surviving* nodes only;");
    println!("a dead node's own in-flight client work is reported as corpse losses.");

    let find = |scenario: &str, k: u8, fault: AvailFault| -> &AvailabilityPoint {
        pts.iter()
            .find(|p| p.scenario == scenario && p.k == k && p.fault == fault)
            .expect("sweep covers the full grid")
    };
    let check = |ok: bool, msg: String| {
        if ok {
            return;
        }
        if gate {
            panic!("{msg}");
        }
        println!("GATE OFF, would have failed: {msg}");
    };

    // Control group: healthy cells complete everything with no losses, no
    // degraded completions, no replays — at every replication degree.
    for p in pts.iter().filter(|p| p.fault == AvailFault::None) {
        check(
            p.completed_all && p.failed_ops == 0 && p.degraded_ops == 0 && p.replays == 0,
            format!("healthy {}/k={} cell degraded: {p:?}", p.scenario, p.k),
        );
    }

    // Baseline: without replication a node kill must cost read losses —
    // this is the blast radius the recovery machinery is judged against.
    let base = find("reads", 1, AvailFault::NodeKill);
    check(
        base.lost_reads > 0,
        format!("k=1 node kill must lose reads or the cell is not stressing anything: {base:?}"),
    );

    // Headline: at k >= 2 with replay, a node kill loses ZERO reads on
    // surviving nodes — every read addressed to the corpse fails over.
    for (k, _) in AVAIL_KW.iter().copied().filter(|&(k, _)| k >= 2) {
        for fault in [AvailFault::NodeKill, AvailFault::Storm] {
            let p = find("reads", k, fault);
            check(
                p.completed_all,
                format!("reads/k={k}/{}: job did not complete: {p:?}", fault.label()),
            );
            check(
                p.lost_reads == 0,
                format!(
                    "reads/k={k}/{}: {} reads lost on surviving nodes (expected 0): {p:?}",
                    fault.label(),
                    p.lost_reads
                ),
            );
        }
        let p = find("reads", k, AvailFault::NodeKill);
        check(
            p.degraded_ops > 0 && p.replays > 0,
            format!("reads/k={k}/node-kill: recovery should be visible as replays: {p:?}"),
        );
    }

    // Writes: the quorum absorbs the dead replica — no errors on surviving
    // nodes, and the absorbed legs show up in the quorum counters.
    for (k, w) in AVAIL_KW.iter().copied().filter(|&(k, _)| k >= 2) {
        let p = find("writes", k, AvailFault::NodeKill);
        check(
            p.completed_all && p.lost_reads == 0,
            format!("writes/k={k}/w={w}/node-kill: losses on surviving nodes: {p:?}"),
        );
        check(
            p.quorum_writes > 0,
            format!("writes/k={k}: no write ever fanned out — replication not engaged: {p:?}"),
        );
    }

    let nk2 = find("reads", 2, AvailFault::NodeKill);
    println!(
        "\nnode-kill reads: k=1 lost {} reads; k=2 lost {} (of {} ops, {} degraded via {} \
         replays, recovery {} cycles, p99 ok {} vs degraded {})",
        base.lost_reads,
        nk2.lost_reads,
        nk2.expected_ops,
        nk2.degraded_ops,
        nk2.replays,
        nk2.recovery_cycles,
        nk2.p99_read_cycles,
        nk2.p99_degraded_read_cycles,
    );

    // Machine-readable table for CI artifacts.
    let mut rows = Vec::new();
    for p in &pts {
        rows.push(format!(
            r#"    {{"scenario": "{}", "fault": "{}", "k": {}, "w": {}, "torus": "{}x{}x{}", "kill_at": {}, "expected_ops": {}, "completed_ops": {}, "failed_ops": {}, "lost_reads": {}, "corpse_failed_reads": {}, "degraded_ops": {}, "replays": {}, "quorum_writes": {}, "quorum_leg_failures": {}, "completed_all": {}, "completion_cycles": {}, "recovery_cycles": {}, "ops_per_kcycle": {:.4}, "p50_ok_read": {}, "p99_ok_read": {}, "p99_degraded_read": {}}}"#,
            p.scenario,
            p.fault.label(),
            p.k,
            p.w,
            p.dims.0,
            p.dims.1,
            p.dims.2,
            p.kill_at,
            p.expected_ops,
            p.completed_ops,
            p.failed_ops,
            p.lost_reads,
            p.corpse_failed_reads,
            p.degraded_ops,
            p.replays,
            p.quorum_writes,
            p.quorum_leg_failures,
            p.completed_all,
            p.completion_cycles,
            p.recovery_cycles,
            p.ops_per_kcycle,
            p.p50_read_cycles,
            p.p99_read_cycles,
            p.p99_degraded_read_cycles,
        ));
    }
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, r#"  "schema": "rackni-bench-availability/1","#);
    let _ = writeln!(
        json,
        r#"  "scale": "{}","#,
        format!("{scale:?}").to_lowercase()
    );
    let _ = writeln!(json, r#"  "kill_at": {},"#, params.kill_at);
    let _ = writeln!(json, r#"  "itt_timeout": {},"#, params.itt_timeout);
    let _ = writeln!(json, r#"  "itt_retries": {},"#, params.itt_retries);
    let _ = writeln!(json, r#"  "points": ["#);
    let _ = writeln!(json, "{}", rows.join(",\n"));
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    let path = "BENCH_availability.json";
    std::fs::write(path, &json).expect("write BENCH_availability.json");
    println!("\navailability table written to {path}");
}
