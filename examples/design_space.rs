//! The full §6 design-space walk: latency tomography, size sweeps, and the
//! conclusion matrix, in one run.
//!
//! ```sh
//! RACKNI_SCALE=quick cargo run --release --example design_space
//! ```

use rackni::experiments::{self, bandwidth_vs_size, latency_vs_size, table3, Scale};
use rackni::ni_soc::Topology;
use rackni::report::{f1, Table};

fn main() {
    let scale = Scale::from_env();
    println!("design_space: NI placement trade-offs on the mesh [scale: {scale:?}]\n");

    // Zero-load tomography (Table 3).
    println!("{}", experiments::table3_render(scale));

    // Who wins on latency, who wins on bandwidth?
    let lat = latency_vs_size(scale, Topology::Mesh, &[64, 16384]);
    let bw = bandwidth_vs_size(scale, Topology::Mesh, &[64, 8192]);
    let t3 = table3(scale);

    let mut t = Table::new(&["metric", "NI_edge", "NI_split", "NI_per-tile", "winner"]);
    let row = |name: &str, vals: [f64; 3], higher_better: bool| {
        let names = ["NI_edge", "NI_split", "NI_per-tile"];
        let mut best = 0;
        for i in 1..3 {
            let better = if higher_better {
                vals[i] > vals[best]
            } else {
                vals[i] < vals[best]
            };
            if better {
                best = i;
            }
        }
        vec![
            name.to_string(),
            f1(vals[0]),
            f1(vals[1]),
            f1(vals[2]),
            names[best].to_string(),
        ]
    };
    t.row_owned(row("64B latency (ns)", lat[0].ns, false));
    t.row_owned(row("16KB latency (ns)", lat[1].ns, false));
    t.row_owned(row("64B bandwidth (GBps)", bw[0].gbps, true));
    t.row_owned(row("8KB bandwidth (GBps)", bw[1].gbps, true));
    println!("{}", t.render());

    println!(
        "NUMA floor: {:.0} cycles. NI_split tracks the per-tile design on latency\n\
         and the edge design on bandwidth — the paper's conclusion reproduced.",
        t3.numa_cycles
    );
}
