//! Serving study: per-tenant SLO observables for a multi-tenant rack.
//!
//! The grid is `experiments::serving_sweep` — a 4x4x4 64-node rack where
//! every chip hosts one core of a latency-sensitive tenant and one core
//! of a throughput tenant:
//!
//! * **kv** — a closed-loop Zipf KV front end (4 outstanding per core,
//!   seeded think times) whose GETs are two-sided RPCs: the remote RRPP
//!   "computes" for a service time before replying, so measured latency
//!   is a full request–response round trip.
//! * **bulk** — open-loop graph-shard adjacency fetches, large payloads
//!   that keep the shared NI pipelines and fabric links busy.
//!
//! Each tenant runs solo (the other tenant's cores idle) and shared; the
//! interference index is the kv tenant's shared-run p99 over its solo-run
//! p99. A fourth, diurnal, case phase-changes from off-peak (8x think
//! time, no bulk) to the peak shared mix at half-time via
//! `Rack::reset_scenario`.
//!
//! The assertions below are the SLO gate CI enforces (set
//! `RACKNI_SLO_GATE=off` to report without failing); the cell table lands
//! in `BENCH_serving.json` (schema `rackni-bench-serving/1`).
//!
//! ```sh
//! cargo run --release --example serving_study            # quick (CI)
//! RACKNI_SCALE=full cargo run --release --example serving_study
//! ```

use std::fmt::Write as _;

use rackni::experiments::{
    serving_interference, serving_points_render, serving_sweep, Scale, ServingPoint,
    SERVING_KV_SERVICE, SERVING_THINK, SERVING_WINDOW, TENANT_BULK, TENANT_KV,
};

/// The kv tenant's p99 ceiling under the shared mix, in cycles, at quick
/// scale. Quick scale measures ~13k on the 4x4x4 rack (the bulk tenant
/// runs in open-loop overload, so the kv tail sits near the queueing
/// limit); the bound leaves ~2x headroom without masking a regression
/// that doubles the tail. Numeric bounds gate at quick scale only — the
/// overloaded bulk queues grow with the horizon, so full-scale tails are
/// structurally larger.
const KV_SHARED_P99_CEILING: u64 = 26_000;

/// The kv tenant's goodput floor under the shared mix, bytes per
/// kilocycle rack-wide, at quick scale. Quick scale measures ~4.2k; a
/// closed-loop tenant that stalls (window leak, lost completions) drops
/// well below this.
const KV_SHARED_GOODPUT_FLOOR: f64 = 1_000.0;

fn main() {
    let scale = Scale::from_env();
    let gate = !matches!(
        std::env::var("RACKNI_SLO_GATE").as_deref(),
        Ok("off") | Ok("0")
    );
    println!(
        "serving_study: 4x4x4 rack, closed-loop kv (window {SERVING_WINDOW}, think \
         ~{SERVING_THINK}, service {SERVING_KV_SERVICE}) vs bulk graph tenant \
         [scale: {scale:?}, gate: {}]\n",
        if gate { "on" } else { "off" }
    );

    let pts = serving_sweep(scale);
    println!("{}", serving_points_render(&pts));

    let find = |case: &str| -> &ServingPoint {
        pts.iter()
            .find(|p| p.case == case)
            .expect("sweep covers the full grid")
    };
    let check = |ok: bool, msg: String| {
        if ok {
            return;
        }
        if gate {
            panic!("{msg}");
        }
        println!("GATE OFF, would have failed: {msg}");
    };

    // Every live tenant in every case made progress and lost nothing:
    // a serving tier that fails requests has no SLO to speak of.
    for p in &pts {
        for t in &p.tenants {
            check(
                t.slo.samples > 0 && t.slo.achieved_per_kcycle > 0.0,
                format!(
                    "{}/{}: tenant made no progress: {:?}",
                    p.case, t.label, t.slo
                ),
            );
            check(
                t.slo.failure_rate == 0.0,
                format!("{}/{}: failed requests: {:?}", p.case, t.label, t.slo),
            );
        }
    }

    // Tenant isolation bookkeeping: solo cases must report exactly the
    // tenants they run — tags are plumbed core -> chip -> rack, so a
    // stray tag means the striping or tagging broke.
    check(
        find("solo-kv").tenants.len() == 1 && find("solo-kv").tenant(TENANT_KV).is_some(),
        format!(
            "solo-kv must report only the kv tenant: {:?}",
            find("solo-kv").tenants
        ),
    );
    check(
        find("solo-bulk").tenants.len() == 1 && find("solo-bulk").tenant(TENANT_BULK).is_some(),
        format!(
            "solo-bulk must report only the bulk tenant: {:?}",
            find("solo-bulk").tenants
        ),
    );
    check(
        find("shared").tenants.len() == 2,
        format!(
            "shared mix must report both tenants: {:?}",
            find("shared").tenants
        ),
    );

    let solo = find("solo-kv").tenant(TENANT_KV).expect("solo kv ran");
    let shared = find("shared").tenant(TENANT_KV).expect("shared kv ran");

    // The headline: co-locating the bulk tenant on the same chips and
    // fabric measurably stretches the kv tail — shared p99 strictly above
    // solo p99. If these are equal the tenants are not actually
    // contending and the study measures nothing.
    let interference = serving_interference(&pts);
    check(
        shared.p99 > solo.p99,
        format!(
            "no cross-tenant interference: shared kv p99 {} <= solo p99 {}",
            shared.p99, solo.p99
        ),
    );

    // The SLO gate proper: the kv tenant's shared-mix tail and goodput
    // stay within the serving bounds. The numeric bounds are calibrated
    // for (and only checked at) quick scale — the scale CI runs.
    if scale == Scale::Quick {
        check(
            shared.p99 <= KV_SHARED_P99_CEILING,
            format!(
                "kv SLO violated: shared p99 {} cycles > ceiling {KV_SHARED_P99_CEILING}",
                shared.p99
            ),
        );
        check(
            shared.goodput_bytes_per_kcycle >= KV_SHARED_GOODPUT_FLOOR,
            format!(
                "kv goodput {:.1} B/kcycle below floor {KV_SHARED_GOODPUT_FLOOR}",
                shared.goodput_bytes_per_kcycle
            ),
        );
    }

    // Diurnal sanity: the phase change takes — the peak half runs the
    // shared mix, so the bulk tenant must appear in the diurnal stats.
    let diurnal = find("diurnal");
    check(
        diurnal.tenant(TENANT_KV).is_some() && diurnal.tenant(TENANT_BULK).is_some(),
        format!("diurnal peak phase never engaged: {:?}", diurnal.tenants),
    );
    // The off-peak half throttles the kv tenant (8x think time) and the
    // peak half contends with bulk, so a diurnal run must offer less kv
    // load than the uncontended full-length solo run. (Not compared to
    // the shared run: closed-loop offered load is endogenous, and full-
    // time contention suppresses it below even the throttled diurnal.)
    let dkv = diurnal.tenant(TENANT_KV).expect("diurnal kv ran");
    check(
        dkv.offered_per_kcycle < solo.offered_per_kcycle,
        format!(
            "diurnal off-peak phase had no effect: {:.2} >= {:.2} offered/kcycle",
            dkv.offered_per_kcycle, solo.offered_per_kcycle
        ),
    );

    println!(
        "\nkv tenant: solo p99 {} cycles, shared p99 {} cycles, interference {:.2}x; \
         shared goodput {:.1} B/kcycle",
        solo.p99, shared.p99, interference, shared.goodput_bytes_per_kcycle
    );

    // Machine-readable table for CI artifacts.
    let mut rows = Vec::new();
    for p in &pts {
        for t in &p.tenants {
            rows.push(format!(
                r#"    {{"case": "{}", "tenant": "{}", "tag": {}, "torus": "{}x{}x{}", "cycles": {}, "offered_per_kcycle": {:.4}, "achieved_per_kcycle": {:.4}, "goodput_bytes_per_kcycle": {:.4}, "failure_rate": {:.6}, "p50": {}, "p99": {}, "p999": {}, "samples": {}}}"#,
                p.case,
                t.label,
                t.tag,
                p.dims.0,
                p.dims.1,
                p.dims.2,
                p.cycles,
                t.slo.offered_per_kcycle,
                t.slo.achieved_per_kcycle,
                t.slo.goodput_bytes_per_kcycle,
                t.slo.failure_rate,
                t.slo.p50,
                t.slo.p99,
                t.slo.p999,
                t.slo.samples,
            ));
        }
    }
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, r#"  "schema": "rackni-bench-serving/1","#);
    let _ = writeln!(
        json,
        r#"  "scale": "{}","#,
        format!("{scale:?}").to_lowercase()
    );
    let _ = writeln!(json, r#"  "window": {SERVING_WINDOW},"#);
    let _ = writeln!(json, r#"  "think": {SERVING_THINK},"#);
    let _ = writeln!(json, r#"  "service": {SERVING_KV_SERVICE},"#);
    let _ = writeln!(json, r#"  "kv_interference_index": {:.4},"#, interference);
    let _ = writeln!(json, r#"  "points": ["#);
    let _ = writeln!(json, "{}", rows.join(",\n"));
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    let path = "BENCH_serving.json";
    std::fs::write(path, &json).expect("write BENCH_serving.json");
    println!("serving table written to {path}");
}
